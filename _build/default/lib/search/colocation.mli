(** Co-location constraints — Algorithm 2 of the paper.

    When CCD proposes mapping collection [c] of task [t] to memory kind
    [r] while running [t] on processor kind [k], every collection
    overlapping [c] in the (current, partially pruned) graph C must
    move to [r] too (constraint (2), §4.2).  Those moves can strand a
    task on a processor kind that cannot address one of its arguments
    (constraint (1)), which moves that task to [k]; moving a task can
    in turn strand other arguments, and so on.  [apply] iterates the
    two repair rules to a global fixed point, exactly following the
    worklist structure of Algorithm 2 ([t_check] / [c_check]).

    The iteration provably converges (the limiting case maps every
    task to [k] and every collection to one kind); a generous step cap
    guards against implementation bugs. *)

val apply :
  Graph.t ->
  Machine.t ->
  overlap:Overlap.t ->
  mapping:Mapping.t ->
  t:int ->
  c:int ->
  k:Kinds.proc_kind ->
  r:Kinds.mem_kind ->
  Mapping.t
(** [apply g machine ~overlap ~mapping ~t ~c ~k ~r] assumes [mapping]
    already maps task [t] to [k] and collection [c] to [r] (line 16 of
    Algorithm 1) and returns the constraint-satisfying mapping f''.
    Raises [Failure] if the fixed point does not settle within the
    step cap (indicating a bug, not an input property). *)

val satisfies_colocation : Overlap.t -> Mapping.t -> bool
(** Constraint (2) check: every overlap edge's endpoints share a memory
    kind. *)
