(** Coordinate-wise descent (§4.1).

    One pass of OptimizeTask over every task — equivalent to the final
    (fully pruned) rotation of CCD — starting from the §4.1 starting
    point: group tasks distributed, GPU-capable tasks on GPUs,
    collections in the fastest memory of the chosen kind.  Runtime is
    linear in tasks × collections. *)

val search :
  ?start:Mapping.t ->
  ?budget:float ->
  Evaluator.t ->
  Mapping.t * float
(** Returns the best mapping found and its measured performance.
    [budget] bounds the evaluator's virtual search time (default
    unlimited). *)
