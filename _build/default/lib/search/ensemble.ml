type config = {
  seed : int;
  elite_size : int;
  exploration : float;
  suggestion_overhead : float;
  max_suggestions : int;
}

let default_config =
  {
    seed = 42;
    elite_size = 5;
    exploration = 0.2;
    suggestion_overhead = 0.005;
    max_suggestions = 200_000;
  }

let technique_names = [ "random"; "mutate"; "crossover"; "pattern" ]

type bandit_arm = { mutable uses : int; mutable wins : int }

let arm_score arm =
  (* Laplace-smoothed success rate; unexplored arms look promising. *)
  float_of_int (arm.wins + 1) /. float_of_int (arm.uses + 2)

let pick_arm rng ~exploration arms =
  if Rng.float rng 1.0 < exploration then Rng.int rng (Array.length arms)
  else begin
    let best = ref 0 in
    Array.iteri (fun i a -> if arm_score a > arm_score arms.(!best) then best := i) arms;
    !best
  end

(* Unconstrained single-coordinate mutation: kinds drawn from the full
   domain, ignoring accessibility — the OpenTuner behaviour. *)
let flip_strategy = function
  | Mapping.Blocked -> Mapping.Cyclic
  | Mapping.Cyclic -> Mapping.Blocked

let mutate space rng parent =
  let dims = Array.of_list (Space.dims space) in
  match Rng.choose rng dims with
  | Space.Distribution tid ->
      Mapping.set_distribute parent tid (not (Mapping.distribute_of parent tid))
  | Space.Strategy tid ->
      Mapping.set_strategy parent tid (flip_strategy (Mapping.strategy_of parent tid))
  | Space.Processor tid ->
      Mapping.set_proc parent tid (Rng.choose_list rng Kinds.all_proc_kinds)
  | Space.Memory cid ->
      Mapping.set_mem parent cid (Rng.choose_list rng Kinds.all_mem_kinds)

let crossover g rng a b =
  Mapping.make g
    ~strategy:(fun t -> Mapping.strategy_of (if Rng.bool rng then a else b) t.tid)
    ~distribute:(fun t ->
      Mapping.distribute_of (if Rng.bool rng then a else b) t.tid)
    ~proc:(fun t -> Mapping.proc_of (if Rng.bool rng then a else b) t.tid)
    ~mem:(fun c -> Mapping.mem_of (if Rng.bool rng then a else b) c.cid)

(* Pattern walk: visit dimensions cyclically, replacing the current
   value with the "next" value of the full domain. *)
let pattern_step space cursor parent =
  let dims = Array.of_list (Space.dims space) in
  let d = dims.(cursor mod Array.length dims) in
  match d with
  | Space.Distribution tid ->
      Mapping.set_distribute parent tid (not (Mapping.distribute_of parent tid))
  | Space.Strategy tid ->
      Mapping.set_strategy parent tid (flip_strategy (Mapping.strategy_of parent tid))
  | Space.Processor tid ->
      let next = function Kinds.Cpu -> Kinds.Gpu | Kinds.Gpu -> Kinds.Cpu in
      Mapping.set_proc parent tid (next (Mapping.proc_of parent tid))
  | Space.Memory cid ->
      let next = function
        | Kinds.System -> Kinds.Zero_copy
        | Kinds.Zero_copy -> Kinds.Frame_buffer
        | Kinds.Frame_buffer -> Kinds.System
      in
      Mapping.set_mem parent cid (next (Mapping.mem_of parent cid))

let search ?(config = default_config) ?start ?(budget = infinity) ev =
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let space = Evaluator.space ev in
  let rng = Rng.create config.seed in
  let f0 = match start with Some f -> f | None -> Mapping.default_start g machine in
  let p0 = Evaluator.evaluate ev f0 in
  let best = ref (f0, p0) in
  let arms = Array.init 4 (fun _ -> { uses = 0; wins = 0 }) in
  let pattern_cursor = ref 0 in
  let elites () =
    match Profiles_db.top (Evaluator.db ev) config.elite_size with
    | [] -> [ fst !best ]
    | es -> List.map (fun e -> e.Profiles_db.mapping) es
  in
  let propose arm =
    match arm with
    | 0 -> Space.random_unconstrained space rng
    | 1 -> mutate space rng (Rng.choose_list rng (elites ()))
    | 2 -> (
        match elites () with
        | [ only ] -> mutate space rng only
        | es -> crossover g rng (Rng.choose_list rng es) (Rng.choose_list rng es))
    | 3 ->
        let c = !pattern_cursor in
        incr pattern_cursor;
        pattern_step space c (fst !best)
    | _ -> assert false
  in
  let suggestions = ref 0 in
  while
    !suggestions < config.max_suggestions && Evaluator.virtual_time ev <= budget
  do
    incr suggestions;
    let arm_idx = pick_arm rng ~exploration:config.exploration arms in
    let candidate = propose arm_idx in
    Evaluator.note_suggestion_overhead ev config.suggestion_overhead;
    let perf = Evaluator.evaluate ev candidate in
    let arm = arms.(arm_idx) in
    arm.uses <- arm.uses + 1;
    if perf < snd !best then begin
      arm.wins <- arm.wins + 1;
      best := (candidate, perf)
    end
  done;
  !best
