(** HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al.), the
    classic list-scheduling heuristic the paper's related-work section
    contrasts AutoMap against (§6, "Task Scheduling for Heterogeneous
    Systems").

    HEFT ranks tasks by *upward rank* (average execution cost plus the
    critical path of average communication and successor ranks) and
    assigns each, in rank order, to the processor kind minimizing its
    earliest finish time.  Crucially — and this is the gap AutoMap
    fills — HEFT assumes the choice of processor fully determines data
    placement: every collection argument lands in the fastest memory of
    the chosen kind.  It therefore cannot express Zero-Copy
    co-location, which is why it loses to CCD whenever shared
    collections matter (the ablation bench quantifies this). *)

val mapping : Machine.t -> Graph.t -> Mapping.t
(** The HEFT-derived mapping: per-task processor kinds from the EFT
    schedule, every argument in the fastest accessible memory kind,
    all group tasks distributed. *)

val upward_ranks : Machine.t -> Graph.t -> float array
(** The rank_u values (indexed by tid), exposed for tests. *)
