(** Access mode of a task's collection argument (§2: tasks are
    functions of named data collections that they may read, write, or
    both). *)

type t = Read | Write | Read_write

val reads : t -> bool
val writes : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
