(** Communication pattern of a dependence edge between two collection
    arguments of a distributed group task.

    When a group task's shards are spread across nodes, a dependence
    moves data between shard instances.  [Same_shard] dependencies stay
    within a shard (no traffic when both arguments share a memory);
    [Halo] dependencies additionally exchange a fraction of the
    argument with the two neighbouring shards — the ghost-region
    pattern of the stencil-style applications, and the source of the
    overlap edges CCD exploits (§4.2). *)

type t =
  | Same_shard
  | Halo of { frac : float }
      (** each shard sends [frac] × argument-bytes to each of its two
          neighbours (clamped at the domain boundary) *)

val halo : frac:float -> t
(** Validated constructor; [frac] must lie in (0, 1]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
