(** Per-task runtime profiles.

    AutoMap performs a dynamic analysis (§1, §3): profiling the
    application tells the search the measured cost of each task under
    the current best mapping.  CD/CCD consume the profile to visit
    tasks from longest-running to shortest (Algorithm 1 line 6) —
    expensive tasks are optimized first because their best mapping is
    least influenced by the rest of the application. *)

type t
(** Total accumulated runtime per task (seconds), indexed by tid. *)

val uniform : Graph.t -> t
(** All tasks equal — used before the first evaluation has produced a
    real profile. *)

val of_times : Graph.t -> (int * float) list -> t
(** [(tid, seconds)] pairs; missing tasks get 0. *)

val time : t -> int -> float

val order_tasks_by_runtime : Graph.t -> t -> Graph.task list
(** Tasks sorted by profile time, descending; ties by tid for
    determinism. *)

val order_args_by_size : Graph.task -> Graph.collection list
(** A task's collection arguments sorted by size, descending
    (Algorithm 1 line 14); ties by cid. *)
