type t = Read | Write | Read_write

let reads = function Read | Read_write -> true | Write -> false
let writes = function Write | Read_write -> true | Read -> false

let to_string = function
  | Read -> "R"
  | Write -> "W"
  | Read_write -> "RW"

let pp ppf m = Format.pp_print_string ppf (to_string m)
let equal a b = a = b
