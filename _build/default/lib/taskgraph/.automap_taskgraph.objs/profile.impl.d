lib/taskgraph/profile.ml: Array Graph List
