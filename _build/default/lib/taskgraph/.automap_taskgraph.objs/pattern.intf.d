lib/taskgraph/pattern.mli: Format
