lib/taskgraph/overlap.mli: Graph
