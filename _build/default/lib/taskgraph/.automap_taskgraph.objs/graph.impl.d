lib/taskgraph/graph.ml: Array Format Hashtbl Int Kinds List Mode Pattern Printf Queue Set
