lib/taskgraph/mode.mli: Format
