lib/taskgraph/graph_codec.mli: Graph
