lib/taskgraph/graph_codec.ml: Array Buffer Graph Hashtbl Kinds List Mode Option Pattern Printf String
