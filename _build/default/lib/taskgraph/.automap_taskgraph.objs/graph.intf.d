lib/taskgraph/graph.mli: Format Kinds Mode Pattern
