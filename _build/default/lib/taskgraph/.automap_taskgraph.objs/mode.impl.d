lib/taskgraph/mode.ml: Format
