lib/taskgraph/pattern.ml: Format Printf
