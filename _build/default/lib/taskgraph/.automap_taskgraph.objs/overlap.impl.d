lib/taskgraph/overlap.ml: Float Graph List Map
