lib/taskgraph/profile.mli: Graph
