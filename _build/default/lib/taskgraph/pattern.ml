type t = Same_shard | Halo of { frac : float }

let halo ~frac =
  if frac <= 0.0 || frac > 1.0 then invalid_arg "Pattern.halo: frac must be in (0, 1]";
  Halo { frac }

let to_string = function
  | Same_shard -> "same-shard"
  | Halo { frac } -> Printf.sprintf "halo(%.3g)" frac

let pp ppf p = Format.pp_print_string ppf (to_string p)

let equal a b =
  match (a, b) with
  | Same_shard, Same_shard -> true
  | Halo { frac = f1 }, Halo { frac = f2 } -> f1 = f2
  | Same_shard, Halo _ | Halo _, Same_shard -> false
