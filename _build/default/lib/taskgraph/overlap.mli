(** Induced graph C over collections (§4.2).

    Vertices are collection arguments; an edge [(c1, c2)] with weight
    |c1 ∩ c2| links arguments that reference non-disjoint parts of the
    same logical data (halo regions, shared state).  CCD uses C to
    enforce co-location constraint (2) and relaxes the constraint by
    pruning the lightest edges after each rotation (Algorithm 1,
    line 8). *)

type t

val of_graph : Graph.t -> t
(** The overlap edges declared on the graph. *)

val of_edges : (int * int * float) list -> t
(** Build from raw [(c1, c2, weight)] edges (weights must be positive;
    pairs are normalized to c1 < c2 and deduplicated keeping the
    heaviest). *)

val n_edges : t -> int

val edges : t -> (int * int * float) list
(** Normalized edges in (c1, c2) order. *)

val neighbors : t -> int -> (int * float) list
(** Overlap partners of a collection with edge weights. *)

val partners : t -> int -> int list
(** Just the partner cids. *)

val prune_lightest : t -> int -> t
(** [prune_lightest c n] removes the [n] lowest-weight edges (ties
    broken by (c1, c2) order); removing more edges than exist yields
    the empty graph.  Pure: the original is unchanged. *)

val is_empty : t -> bool

val o_map : Graph.t -> t -> int -> (int * int) list
(** The map O of Algorithm 1 line 5: [o_map g c cid] returns
    [(t, cid)] itself followed by every [(t', c')] whose collection
    overlaps [cid] in C. *)
