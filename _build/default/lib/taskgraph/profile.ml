type t = float array

let uniform g = Array.make (Graph.n_tasks g) 1.0

let of_times g times =
  let a = Array.make (Graph.n_tasks g) 0.0 in
  List.iter
    (fun (tid, s) ->
      if tid < 0 || tid >= Array.length a then invalid_arg "Profile.of_times: bad tid";
      a.(tid) <- a.(tid) +. s)
    times;
  a

let time t tid =
  if tid < 0 || tid >= Array.length t then invalid_arg "Profile.time: bad tid";
  t.(tid)

let order_tasks_by_runtime g t =
  Graph.topological_order g
  |> List.stable_sort (fun (a : Graph.task) (b : Graph.task) ->
         match compare t.(b.tid) t.(a.tid) with
         | 0 -> compare a.tid b.tid
         | c -> c)

let order_args_by_size (task : Graph.task) =
  List.stable_sort
    (fun (a : Graph.collection) (b : Graph.collection) ->
      match compare b.bytes a.bytes with 0 -> compare a.cid b.cid | c -> c)
    task.args
