lib/apps/pennant.mli: Graph Machine Mapping
