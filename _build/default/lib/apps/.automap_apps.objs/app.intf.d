lib/apps/app.mli: Graph Machine Mapping
