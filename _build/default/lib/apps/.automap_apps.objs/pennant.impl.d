lib/apps/pennant.ml: App_util Float List Printf Workload
