lib/apps/circuit.mli: Graph Machine Mapping
