lib/apps/maestro.mli: Graph Machine Mapping
