lib/apps/stencil.mli: Graph Machine Mapping
