lib/apps/stencil.ml: App_util Float List Printf Workload
