lib/apps/htr.ml: App_util Float List Printf Workload
