lib/apps/maestro.ml: App_util Float Graph Kinds List Mapping Printf String Workload
