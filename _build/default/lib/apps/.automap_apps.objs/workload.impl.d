lib/apps/workload.ml: Float Graph Hashtbl Kinds List Mode Option Pattern Printf
