lib/apps/app_util.ml: Graph Kinds List Mapping String
