lib/apps/htr.mli: Graph Machine Mapping
