lib/apps/circuit.ml: App_util Float List Printf Workload
