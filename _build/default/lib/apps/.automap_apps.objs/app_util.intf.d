lib/apps/app_util.mli: Graph Machine Mapping
