lib/apps/app.ml: Circuit Graph Htr List Machine Maestro Mapping Pennant Stencil String
