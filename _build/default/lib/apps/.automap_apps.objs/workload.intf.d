lib/apps/workload.mli: Graph Kinds Mode
