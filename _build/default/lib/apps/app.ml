type t = {
  app_name : string;
  graph : nodes:int -> input:string -> Graph.t;
  inputs : nodes:int -> string list;
  custom : Graph.t -> Machine.t -> Mapping.t;
}

let circuit =
  {
    app_name = Circuit.name;
    graph = Circuit.graph;
    inputs = Circuit.inputs;
    custom = Circuit.custom_mapping;
  }

let stencil =
  {
    app_name = Stencil.name;
    graph = Stencil.graph;
    inputs = Stencil.inputs;
    custom = Stencil.custom_mapping;
  }

let pennant =
  {
    app_name = Pennant.name;
    graph = Pennant.graph;
    inputs = Pennant.inputs;
    custom = Pennant.custom_mapping;
  }

let htr =
  { app_name = Htr.name; graph = Htr.graph; inputs = Htr.inputs; custom = Htr.custom_mapping }

let maestro =
  {
    app_name = Maestro.name;
    graph = (fun ~nodes ~input -> Maestro.graph_of_input ~nodes ~input);
    inputs = Maestro.inputs;
    custom = Maestro.custom_mapping;
  }

let all = [ circuit; stencil; pennant; htr; maestro ]

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun a -> String.lowercase_ascii a.app_name = name) all
