let name = "Circuit"

let base_inputs =
  [ (50, 200); (100, 400); (200, 800); (400, 1600); (800, 3200); (1600, 6400);
    (6400, 25600); (12800, 51200) ]

let inputs ~nodes =
  List.map (fun (n, w) -> Printf.sprintf "n%dw%d" (n * nodes) (w * nodes)) base_inputs

let graph ~nodes ~input =
  match App_util.parse_pair ~tag1:'n' ~tag2:'w' input with
  | None -> invalid_arg ("Circuit.graph: bad input " ^ input)
  | Some (cnodes, wires) ->
      let shards = App_util.pieces_per_node * nodes in
      (* Input counts name circuit nodes/wires; each wire is modelled
         with ~100 segments (elements), matching the workload scale of
         the original Legion application. *)
      let n = 100.0 *. float_of_int cnodes and w = 100.0 *. float_of_int wires in
      (* Ghost fraction of a piece's node arrays: the boundary nodes
         shared with neighbouring pieces. *)
      (* Boundary nodes shared with neighbouring pieces: the cut of a
         near-planar circuit graph grows like sqrt of the piece size. *)
      let halo = Float.min 0.3 (4.0 *. float_of_int shards /. sqrt n) in
      let arrays =
        [
          Workload.array_decl ~name:"wires" ~elems:w ~comps:16 ();
          Workload.array_decl ~name:"wire_params" ~elems:w ~comps:4 ();
          Workload.array_decl ~name:"volt" ~elems:n ~comps:2 ~halo_frac:halo ();
          Workload.array_decl ~name:"charge" ~elems:n ~comps:1 ~halo_frac:halo ();
          Workload.array_decl ~name:"node_params" ~elems:n ~comps:2 ();
          Workload.array_decl ~name:"node_state" ~elems:n ~comps:2 ();
          Workload.array_decl ~name:"node_hist" ~elems:n ~comps:1 ();
        ]
      in
      let tasks =
        [
          (* inner Newton loop over wire segments: flop-heavy, dense *)
          Workload.task_decl ~name:"calc_new_currents" ~work_elems:w
            ~flops_per_elem:600.0 ~group_size:shards ~gpu_eff:1.0 ~cpu_eff:0.9
            ~accesses:
              [
                Workload.read_write "wires";
                Workload.read "wire_params";
                Workload.read ~ghosted:true "volt";
                Workload.read "node_params";
                Workload.read "node_state";
              ]
            ();
          (* scatter currents into charge: ghosted accumulation *)
          Workload.task_decl ~name:"distribute_charge" ~work_elems:w
            ~flops_per_elem:40.0 ~group_size:shards ~gpu_eff:0.6 ~cpu_eff:0.9
            ~accesses:
              [
                Workload.read "wires";
                Workload.read "wire_params";
                Workload.read_write ~ghosted:true "charge";
                Workload.read "node_params";
                Workload.read "volt";
              ]
            ();
          (* per-node voltage update: light *)
          Workload.task_decl ~name:"update_voltages" ~work_elems:n
            ~flops_per_elem:60.0 ~group_size:shards ~gpu_eff:0.5 ~cpu_eff:1.0
            ~accesses:
              [
                Workload.read_write "volt";
                Workload.read_write "charge";
                Workload.read "node_params";
                Workload.read_write "node_state";
                Workload.read_write "node_hist";
              ]
            ();
        ]
      in
      Workload.build ~name:(Printf.sprintf "Circuit-%s" input) ~iterations:3 ~arrays
        ~tasks

let custom_mapping g machine =
  App_util.custom_mapping ~cpu_tasks:[ "update_voltages" ]
    ~zc_arrays:[ "volt"; "charge" ] g machine
