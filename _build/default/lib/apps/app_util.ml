let parse_pair ~tag1 ~tag2 s =
  match String.index_opt s tag2 with
  | None -> None
  | Some i ->
      if String.length s = 0 || s.[0] <> tag1 then None
      else
        let a = String.sub s 1 (i - 1) in
        let b = String.sub s (i + 1) (String.length s - i - 1) in
        (match (int_of_string_opt a, int_of_string_opt b) with
        | Some a, Some b when a > 0 && b > 0 -> Some (a, b)
        | _ -> None)

let parse_cross s =
  match String.split_on_char 'x' s with
  | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b when a > 0 && b > 0 -> Some (a, b)
      | _ -> None)
  | _ -> None

(* "8x8y9z": x after the first number, y after the second, z at end. *)
let parse_xyz s =
  if String.length s = 0 || s.[String.length s - 1] <> 'z' then None
  else
    let body = String.sub s 0 (String.length s - 1) in
    match String.split_on_char 'x' body with
    | [ a; rest ] -> (
        match String.split_on_char 'y' rest with
        | [ b; c ] -> (
            match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
            | Some a, Some b, Some c when a > 0 && b > 0 && c > 0 -> Some (a, b, c)
            | _ -> None)
        | _ -> None)
    | _ -> None

let pieces_per_node = 4

let arg_array_name (c : Graph.collection) =
  match String.index_opt c.cname '.' with
  | Some i -> String.sub c.cname (i + 1) (String.length c.cname - i - 1)
  | None -> c.cname

let custom_mapping ?(cpu_tasks = []) ?(zc_arrays = []) ?(sys_arrays = [])
    ?(zc_max_bytes = 0.25e6) g machine =
  let base = Mapping.default_start g machine in
  let small_enough (t : Graph.task) =
    List.for_all (fun (c : Graph.collection) -> c.bytes <= zc_max_bytes) t.args
  in
  let proc (t : Graph.task) =
    if List.mem t.tname cpu_tasks && Graph.has_variant t Kinds.Cpu && small_enough t
    then Kinds.Cpu
    else Mapping.proc_of base t.tid
  in
  Mapping.make g
    ~distribute:(fun t -> Mapping.distribute_of base t.tid)
    ~proc
    ~mem:(fun c ->
      let k = proc (Graph.task g c.owner) in
      let wanted =
        let a = arg_array_name c in
        (* Hand-written mappers demote shared data to Zero-Copy only
           while it is small; beyond the threshold the slow ZC path
           would dominate, so they keep large data in the fast memory
           (the size-conditional logic real custom mappers contain). *)
        if List.mem a zc_arrays && c.bytes <= zc_max_bytes then Kinds.Zero_copy
        else if List.mem a sys_arrays then Kinds.System
        else Mapping.mem_of base c.cid
      in
      if Kinds.accessible k wanted then wanted
      else
        match Kinds.accessible_mem_kinds k with
        | m :: _ -> m
        | [] -> wanted)
