(** Registry of the five benchmark applications (Figure 5) behind a
    uniform interface, for the benchmark harness and the CLI. *)

type t = {
  app_name : string;
  graph : nodes:int -> input:string -> Graph.t;
  inputs : nodes:int -> string list;  (** the paper's input sweep *)
  custom : Graph.t -> Machine.t -> Mapping.t;  (** hand-written mapper *)
}

val circuit : t
val stencil : t
val pennant : t
val htr : t
val maestro : t

val all : t list
(** In Figure 5 order. *)

val find : string -> t option
(** Case-insensitive lookup by name. *)
