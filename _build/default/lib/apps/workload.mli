(** Declarative workload builder shared by the five benchmark
    applications.

    A workload is described by *logical arrays* (the data structures a
    time step reads and writes) and *tasks* listed in per-iteration
    execution order, each accessing a subset of the arrays.  The
    builder derives the artifacts the rest of the system needs:

    - one collection argument per (task, array) access, sized as the
      task's per-shard partition of the array;
    - dependence edges: each read is fed by the most recent write of
      the same array earlier in the task list (same-shard, or halo when
      the access is declared ghosted); reads that precede the first
      write are fed by the *last* write as a loop-carried edge — so
      data that ping-pongs between differently-mapped tasks is charged
      every iteration, the central cost CCD trades against compute
      (§4.2);
    - overlap edges of the induced graph C: arguments naming the same
      array overlap, with weight = the smaller argument restricted by
      the access' ghost fraction — halo arguments produce the light
      edges that CCD prunes first. *)

type array_decl = {
  aname : string;
  elems : float;       (** total elements across the whole problem *)
  comps : int;         (** values per element *)
  halo_frac : float;   (** ghost fraction of a shard partition, in [0,1) *)
}

val array_decl :
  ?comps:int -> ?halo_frac:float -> name:string -> elems:float -> unit -> array_decl
(** [comps] defaults to 1, [halo_frac] to 0 (no ghost region). *)

type access = {
  array : string;
  amode : Mode.t;
  ghosted : bool;  (** the consumer also needs neighbours' halo data *)
}

val read : ?ghosted:bool -> string -> access
val write : string -> access
val read_write : ?ghosted:bool -> string -> access

type task_decl = {
  dname : string;
  work_elems : float;      (** total elements the task processes *)
  flops_per_elem : float;
  variants : Kinds.proc_kind list;
  cpu_eff : float;
  gpu_eff : float;
  group_size : int;
  accesses : access list;
}

val task_decl :
  ?variants:Kinds.proc_kind list ->
  ?cpu_eff:float ->
  ?gpu_eff:float ->
  name:string ->
  work_elems:float ->
  flops_per_elem:float ->
  group_size:int ->
  accesses:access list ->
  unit ->
  task_decl
(** [variants] defaults to both kinds, efficiencies to 1.0. *)

val build :
  name:string -> iterations:int -> arrays:array_decl list -> tasks:task_decl list ->
  Graph.t
(** Raises {!Graph.Invalid_graph} on inconsistent declarations (unknown
    or duplicate array names, empty task/array lists).  An array no
    task writes is treated as input data: its readers get no
    dependence edges. *)

val bytes_per_elem : int -> float
(** [comps] components of 8-byte values. *)
