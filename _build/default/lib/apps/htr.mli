(** HTR: hypersonic aerothermodynamics multi-physics solver (Di Renzo,
    Fu & Urzay) — 28 group tasks, 72 collection arguments (Figure 5),
    and the application behind the paper's Figures 2 and 3.

    Each step runs boundary conditions on the six faces (tiny,
    launch-bound tasks), property/EOS updates, gradient and flux
    sweeps per direction (ghosted reads of the shared primitive
    state), the stiff finite-rate chemistry integration (the dominant,
    compute-bound task), and the Runge–Kutta update chain.  The widely
    shared primitive/conserved arrays are what AutoMap places in
    Zero-Copy on the best mappings (Figure 3).  Inputs use HTR's
    [<X>x<Y>y<Z>z] tile syntax. *)

val name : string
val graph : nodes:int -> input:string -> Graph.t
val inputs : nodes:int -> string list
val custom_mapping : Graph.t -> Machine.t -> Mapping.t
(** Hand-written mapper: everything on GPU; the shared primitive state
    in Zero-Copy; boundary tasks on CPU. *)
