(** Maestro: multi-fidelity ensemble compressible Navier–Stokes CFD
    (§5.1, Figure 7).

    A bi-fidelity ensemble: one high-fidelity (HF) sample whose
    GPU-only tasks and collections are sized to (nearly) fill the
    Frame-Buffer, plus [n_lf] low-fidelity (LF) samples of resolution
    [r]³.  Each of the 13 LF task types is a group task with one shard
    per sample (Figure 5: "13 tasks (only LFs), 30 collection
    arguments").  Because the HF data occupies the Frame-Buffer, any
    LF collection mapped to FB overflows — the search must choose
    between CPU+System and GPU+Zero-Copy placements per task, the
    decision Figure 7 shows neither standard strategy gets right
    everywhere.

    The experiment metric is *degradation*: makespan of the ensemble
    over makespan of the HF sample running alone ([graph ~n_lf:0]). *)

val name : string

val graph :
  ?hf_frac:float ->
  ?fb_per_node:float ->
  nodes:int ->
  n_lf:int ->
  resolution:int ->
  unit ->
  Graph.t
(** [hf_frac] (default 0.998) is the fraction of each node's total
    Frame-Buffer capacity the HF sample's collections occupy;
    [fb_per_node] (default 64 GB, a Lassen node's four 16 GB V100s) is
    that capacity.  [n_lf] = 0 gives the HF-alone baseline. *)

val graph_of_input : nodes:int -> input:string -> Graph.t
(** Input syntax ["lf<count>r<resolution>"], e.g. ["lf16r32"]. *)

val inputs : nodes:int -> string list
(** The Figure 7 sweep: LF counts {4, 8, 16, 32, 64} × resolutions
    {16, 32}. *)

val lf_cpu_sys : Graph.t -> Machine.t -> Mapping.t
(** Standard strategy 1: all LF tasks on CPUs, collections in System
    memory. *)

val lf_gpu_zc : Graph.t -> Machine.t -> Mapping.t
(** Standard strategy 2: all LF tasks on GPUs, collections in
    Zero-Copy memory. *)

val custom_mapping : Graph.t -> Machine.t -> Mapping.t
(** Alias of {!lf_gpu_zc} (the strategy the Maestro developers use by
    default). *)
