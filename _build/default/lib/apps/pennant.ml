let name = "Pennant"

let base_inputs =
  [ (320, 90); (320, 180); (320, 360); (320, 720); (320, 1440); (320, 2880);
    (320, 5760) ]

let inputs ~nodes =
  List.map (fun (x, y) -> Printf.sprintf "%dx%d" x (y * nodes)) base_inputs

(* Component counts of every logical array, grouped by mesh entity.
   Points are shared at piece boundaries (halo); sides are 4x zones. *)
let point_arrays = [ ("px", 4); ("pu", 4); ("pf", 4); ("pmass", 2); ("pap", 4) ]

let zone_arrays =
  [ ("zm", 2); ("zr", 2); ("ze", 2); ("zp", 2); ("zw", 2); ("zvol", 2);
    ("zdu", 4); ("zx", 4); ("zchar", 2) ]

let side_arrays = [ ("sf", 6); ("sarea", 3); ("svol", 3) ]

let sides_per_zone = 4.0

let bytes_per_zone =
  let sum l = List.fold_left (fun acc (_, c) -> acc +. float_of_int c) 0.0 l in
  8.0 *. (sum point_arrays +. sum zone_arrays +. (sides_per_zone *. sum side_arrays))

(* (task name, entity, work scale, flops/elem, gpu_eff, cpu_eff, accesses).
   Entity selects the element count the task iterates over; accesses
   are (array, mode, ghosted). *)
type entity = Z | P | S

let phases =
  let r ?(g = false) a = Workload.read ~ghosted:g a in
  let w a = Workload.write a in
  let rw ?(g = false) a = Workload.read_write ~ghosted:g a in
  [
    ("init_step", Z, 1.0, 5.0, 0.5, 1.0, [ rw "zdu"; r "zm"; r "zvol" ]);
    ("calc_ctrs", S, 1.0, 30.0, 0.9, 1.0, [ r ~g:true "px"; w "zx" ]);
    ("calc_vols", S, 1.0, 45.0, 0.9, 1.0, [ r ~g:true "px"; r "zx"; w "zvol"; w "svol" ]);
    ("calc_surf_vecs", S, 1.0, 30.0, 0.9, 1.0, [ r "zx"; r "px"; w "sf" ]);
    ("calc_edge_len", S, 1.0, 25.0, 0.9, 1.0, [ r ~g:true "px"; w "sarea" ]);
    ("calc_char_len", Z, 1.0, 20.0, 0.8, 1.0, [ r "sarea"; r "svol"; w "zchar" ]);
    ("calc_rho", Z, 1.0, 10.0, 0.8, 1.0, [ r "zm"; r "zvol"; w "zr" ]);
    ("calc_crnr_mass", S, 1.0, 25.0, 0.4, 1.0, [ r "zr"; r "sarea"; rw ~g:true "pmass" ]);
    ("calc_state_gas", Z, 1.0, 400.0, 1.0, 0.9, [ r "zr"; r "ze"; w "zp"; w "zw" ]);
    ("calc_force_pgas", S, 1.0, 30.0, 0.9, 1.0, [ r "zp"; rw "sf" ]);
    ("calc_force_tts", S, 1.0, 35.0, 0.9, 1.0, [ r "zr"; r "svol"; rw "sf" ]);
    ("qcs_zone_center", Z, 1.0, 60.0, 0.9, 1.0, [ r "pu"; r "px"; w "zdu" ]);
    ("qcs_corner_div", S, 1.0, 80.0, 0.8, 1.0,
     [ r ~g:true "pu"; r ~g:true "px"; r "zx"; rw "sf" ]);
    ("qcs_qcn_force", S, 1.0, 70.0, 0.9, 1.0, [ r "zr"; r "zdu"; r "zchar"; rw "sf" ]);
    ("qcs_force", S, 1.0, 40.0, 0.9, 1.0, [ rw "sf"; r "sarea"; r "zchar" ]);
    ("sum_crnr_force", S, 1.0, 30.0, 0.4, 1.0, [ r "sf"; rw ~g:true "pf" ]);
    ("apply_fixed_bc", P, 0.05, 10.0, 0.3, 1.0, [ rw "pf"; rw "pu"; r "px"; r "pmass" ]);
    ("calc_accel", P, 1.0, 10.0, 0.7, 1.0, [ r "pf"; r "pmass"; w "pap" ]);
    ("adv_nodes_half", P, 1.0, 15.0, 0.7, 1.0, [ r "pu"; r "pap"; rw "px" ]);
    ("adv_nodes_full", P, 1.0, 15.0, 0.7, 1.0, [ rw "pu"; r "pap"; rw "px" ]);
    ("calc_ctrs_full", S, 1.0, 30.0, 0.9, 1.0, [ r ~g:true "px"; rw "zx" ]);
    ("calc_vols_full", S, 1.0, 45.0, 0.9, 1.0,
     [ r ~g:true "px"; r "zx"; rw "zvol"; rw "svol" ]);
    ("calc_work", S, 1.0, 50.0, 0.8, 1.0, [ r "sf"; r "pu"; r "px"; rw "zw" ]);
    ("calc_work_rate", Z, 1.0, 20.0, 0.8, 1.0, [ r "zvol"; r "zw"; rw "ze" ]);
    ("calc_energy", Z, 1.0, 25.0, 0.8, 1.0, [ r "zw"; rw "ze"; r "zm" ]);
    ("calc_rho_full", Z, 1.0, 10.0, 0.8, 1.0, [ r "zm"; r "zvol"; rw "zr" ]);
    ("sum_energy", Z, 1.0, 15.0, 0.4, 1.0, [ r "ze"; r "zm"; w "diag" ]);
    ("calc_dt_courant", Z, 1.0, 30.0, 0.5, 1.0, [ r "zdu"; r "zchar"; w "diag" ]);
    ("calc_dt_volume", Z, 1.0, 20.0, 0.5, 1.0, [ r "zvol"; r "svol"; w "diag" ]);
    ("calc_dt_hydro", Z, 1.0, 10.0, 0.3, 1.0, [ r "diag"; rw "zdu" ]);
    ("write_output", Z, 0.2, 5.0, 0.3, 1.0,
     [ r "zr"; r "ze"; r "zp"; r "pu"; r "px"; w "diag" ]);
  ]

let graph_of_zones ~nodes ~zones =
  let shards = App_util.pieces_per_node * nodes in
  let z = zones in
  let p = z in
  let s = sides_per_zone *. z in
  (* Boundary points shared between vertically adjacent pieces: the
     inputs are 320-wide strips partitioned along Y, so each piece
     shares two 320-point rows with its neighbours. *)
  let halo = Float.min 0.4 (640.0 *. float_of_int shards /. z) in
  let decl (n, comps) ~elems ~halo_frac =
    Workload.array_decl ~name:n ~elems ~comps ~halo_frac ()
  in
  let arrays =
    List.map (decl ~elems:p ~halo_frac:halo) point_arrays
    @ List.map (decl ~elems:z ~halo_frac:0.0) zone_arrays
    @ List.map (decl ~elems:s ~halo_frac:0.0) side_arrays
    @ [ Workload.array_decl ~name:"diag" ~elems:(float_of_int shards *. 8.0) () ]
  in
  let elems_of = function Z -> z | P -> p | S -> s in
  let tasks =
    List.map
      (fun (tname, entity, scale, flops, gpu_eff, cpu_eff, accesses) ->
        Workload.task_decl ~name:tname
          ~work_elems:(scale *. elems_of entity)
          ~flops_per_elem:flops ~group_size:shards ~gpu_eff ~cpu_eff
          ~accesses ())
      phases
  in
  Workload.build
    ~name:(Printf.sprintf "Pennant-%.0fz" z)
    ~iterations:3 ~arrays ~tasks

let graph ~nodes ~input =
  match App_util.parse_cross input with
  | None -> invalid_arg ("Pennant.graph: bad input " ^ input)
  | Some (x, y) -> graph_of_zones ~nodes ~zones:(float_of_int x *. float_of_int y)

let custom_mapping g machine =
  App_util.custom_mapping ~zc_arrays:[ "px"; "pu"; "pf"; "pmass" ] g machine
