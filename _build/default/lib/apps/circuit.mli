(** Circuit: electrical circuit simulation (Bauer et al., the original
    Legion application) — 3 group tasks, 15 collection arguments
    (Figure 5).

    Per time step: [calc_new_currents] solves each wire's currents with
    an inner iterative loop (flop-heavy, reads the neighbouring pieces'
    node voltages through a ghost region), [distribute_charge]
    scatters wire currents into node charge (ghosted accumulation),
    and [update_voltages] advances node voltages (light, per-node).
    Inputs are named [n<nodes>w<wires>] with the totals of circuit
    nodes and wires (the paper's Figure 6a x-axis; weak-scaled with
    machine nodes). *)

val name : string
val graph : nodes:int -> input:string -> Graph.t
(** @raise Invalid_argument on unparsable input names. *)

val inputs : nodes:int -> string list
(** The eight weak-scaled inputs of Figure 6a for this node count. *)

val custom_mapping : Graph.t -> Machine.t -> Mapping.t
(** The hand-written mapper: compute tasks on GPU, the scatter phase's
    shared node state in Zero-Copy, [update_voltages] on CPU. *)
