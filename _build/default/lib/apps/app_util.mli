(** Helpers shared by the benchmark-application modules: input-string
    parsing and construction of hand-written ("custom") mappings. *)

val parse_pair : tag1:char -> tag2:char -> string -> (int * int) option
(** [parse_pair ~tag1:'n' ~tag2:'w' "n50w200"] is [Some (50, 200)]. *)

val parse_cross : string -> (int * int) option
(** ["500x500"] → [Some (500, 500)]. *)

val parse_xyz : string -> (int * int * int) option
(** ["8x8y9z"] → [Some (8, 8, 9)] (the HTR input syntax). *)

val pieces_per_node : int
(** Shards a group task launches per machine node (the partition count
    the applications use). *)

val custom_mapping :
  ?cpu_tasks:string list ->
  ?zc_arrays:string list ->
  ?sys_arrays:string list ->
  ?zc_max_bytes:float ->
  Graph.t ->
  Machine.t ->
  Mapping.t
(** Builds a hand-written-style mapping: start from the runtime default
    (§4.1/§5: everything distributed, GPU where possible, fastest
    memory), move the named tasks to CPU, place arguments of the named
    arrays in Zero-Copy (resp. System) memory, then repair any
    accessibility violation by falling back to the first kind the
    task's processor can address.  Array names match the suffix after
    the ["task."] prefix of argument names.

    Real hand-written mappers contain size-conditional logic, so the
    CPU/Zero-Copy demotions only apply while the affected arguments
    stay below [zc_max_bytes] (default 256 KB per shard); larger data
    stays on the default fast path. *)

val arg_array_name : Graph.collection -> string
(** The logical-array part of an argument name ("calc_currents.wires" →
    "wires"). *)
