type array_decl = {
  aname : string;
  elems : float;
  comps : int;
  halo_frac : float;
}

let array_decl ?(comps = 1) ?(halo_frac = 0.0) ~name ~elems () =
  if elems <= 0.0 then raise (Graph.Invalid_graph ("array " ^ name ^ ": elems must be positive"));
  if comps <= 0 then raise (Graph.Invalid_graph ("array " ^ name ^ ": comps must be positive"));
  if halo_frac < 0.0 || halo_frac >= 1.0 then
    raise (Graph.Invalid_graph ("array " ^ name ^ ": halo_frac must be in [0,1)"));
  { aname = name; elems; comps; halo_frac }

type access = { array : string; amode : Mode.t; ghosted : bool }

let read ?(ghosted = false) array = { array; amode = Mode.Read; ghosted }
let write array = { array; amode = Mode.Write; ghosted = false }
let read_write ?(ghosted = false) array = { array; amode = Mode.Read_write; ghosted }

type task_decl = {
  dname : string;
  work_elems : float;
  flops_per_elem : float;
  variants : Kinds.proc_kind list;
  cpu_eff : float;
  gpu_eff : float;
  group_size : int;
  accesses : access list;
}

let task_decl ?(variants = Kinds.all_proc_kinds) ?(cpu_eff = 1.0) ?(gpu_eff = 1.0) ~name
    ~work_elems ~flops_per_elem ~group_size ~accesses () =
  {
    dname = name;
    work_elems;
    flops_per_elem;
    variants;
    cpu_eff;
    gpu_eff;
    group_size;
    accesses;
  }

let bytes_per_elem comps = 8.0 *. float_of_int comps

(* One concrete collection argument created for an access. *)
type placed_access = { order : int; tid : int; cid : int; acc : access }

let build ~name ~iterations ~arrays ~tasks =
  if arrays = [] then raise (Graph.Invalid_graph (name ^ ": no arrays declared"));
  if tasks = [] then raise (Graph.Invalid_graph (name ^ ": no tasks declared"));
  let array_tbl = Hashtbl.create 16 in
  List.iter
    (fun a ->
      if Hashtbl.mem array_tbl a.aname then
        raise (Graph.Invalid_graph (name ^ ": duplicate array " ^ a.aname));
      Hashtbl.replace array_tbl a.aname a)
    arrays;
  let find_array n =
    match Hashtbl.find_opt array_tbl n with
    | Some a -> a
    | None -> raise (Graph.Invalid_graph (name ^ ": unknown array " ^ n))
  in
  let b = Graph.Builder.create ~iterations ~name () in
  (* accesses of each array, in task-declaration order *)
  let by_array : (string, placed_access list) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun order (t : task_decl) ->
      let flops = t.work_elems *. t.flops_per_elem /. float_of_int t.group_size in
      let tid =
        Graph.Builder.add_task b ~name:t.dname ~group_size:t.group_size
          ~variants:t.variants ~flops ~cpu_efficiency:t.cpu_eff
          ~gpu_efficiency:t.gpu_eff ()
      in
      List.iter
        (fun acc ->
          let a = find_array acc.array in
          let bytes =
            a.elems *. bytes_per_elem a.comps /. float_of_int t.group_size
          in
          let cid =
            Graph.Builder.add_arg b ~task:tid
              ~name:(Printf.sprintf "%s.%s" t.dname a.aname)
              ~bytes ~mode:acc.amode
          in
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_array a.aname) in
          Hashtbl.replace by_array a.aname ({ order; tid; cid; acc } :: prev))
        t.accesses)
    tasks;
  (* Dependence edges per array. *)
  Hashtbl.iter
    (fun aname placed_rev ->
      let a = find_array aname in
      let placed = List.rev placed_rev in
      let writers = List.filter (fun p -> Mode.writes p.acc.amode) placed in
      let readers = List.filter (fun p -> Mode.reads p.acc.amode) placed in
      let last_writer =
        List.fold_left (fun _ w -> Some w) None writers
      in
      List.iter
        (fun r ->
          let prior =
            List.fold_left
              (fun best w -> if w.order < r.order && w.cid <> r.cid then Some w else best)
              None writers
          in
          let connect w ~carried =
            let pattern =
              if r.acc.ghosted && a.halo_frac > 0.0 then Pattern.halo ~frac:a.halo_frac
              else Pattern.Same_shard
            in
            Graph.Builder.add_dep b ~src:w.cid ~dst:r.cid ~pattern ~carried
          in
          match prior with
          | Some w -> connect w ~carried:false
          | None -> (
              (* fed by the previous iteration's last writer, if any *)
              match last_writer with
              | Some w when w.cid <> r.cid -> connect w ~carried:true
              | Some _ | None -> ()))
        readers;
      (* Overlap clique: arguments naming the same array reference the
         same logical data; |c1 ∩ c2| is the smaller partition. *)
      let rec pairs = function
        | [] -> ()
        | p :: rest ->
            List.iter
              (fun q ->
                let bytes_of (x : placed_access) =
                  let t = List.nth tasks x.order in
                  a.elems *. bytes_per_elem a.comps /. float_of_int t.group_size
                in
                let w = Float.min (bytes_of p) (bytes_of q) in
                Graph.Builder.add_overlap b p.cid q.cid ~bytes:w)
              rest;
            pairs rest
      in
      pairs placed)
    by_array;
  Graph.Builder.build b
