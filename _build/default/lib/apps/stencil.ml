let name = "Stencil"

let base_inputs =
  [ (500, 500); (1000, 1000); (1500, 1500); (2000, 2000); (2500, 2500);
    (3000, 3000); (3500, 3500); (4000, 4000); (4500, 4500); (5000, 5000);
    (5500, 5500) ]

(* Weak scaling doubles the X dimension per doubling of nodes, as in
   Figure 6b's per-node-count input lists. *)
let inputs ~nodes =
  List.map (fun (x, y) -> Printf.sprintf "%dx%d" (x * nodes) y) base_inputs

let graph ~nodes ~input =
  match App_util.parse_cross input with
  | None -> invalid_arg ("Stencil.graph: bad input " ^ input)
  | Some (x, y) ->
      let shards = App_util.pieces_per_node * nodes in
      let cells = float_of_int x *. float_of_int y in
      let rows_per_shard = Float.max 1.0 (float_of_int y /. float_of_int shards) in
      (* radius-2 ghost rows on both sides of a piece *)
      let halo = Float.min 0.5 (4.0 /. rows_per_shard) in
      let perimeter = 2.0 *. float_of_int (x + y) in
      let arrays =
        [
          Workload.array_decl ~name:"grid_a" ~elems:cells ~halo_frac:halo ();
          Workload.array_decl ~name:"grid_b" ~elems:cells ();
          Workload.array_decl ~name:"wx" ~elems:25.0 ();
          Workload.array_decl ~name:"wy" ~elems:25.0 ();
          Workload.array_decl ~name:"bc_x" ~elems:perimeter ();
          Workload.array_decl ~name:"bc_y" ~elems:perimeter ();
          Workload.array_decl ~name:"mask" ~elems:cells ();
          Workload.array_decl ~name:"norm" ~elems:(float_of_int shards) ();
        ]
      in
      let tasks =
        [
          Workload.task_decl ~name:"stencil" ~work_elems:cells ~flops_per_elem:18.0
            ~group_size:shards ~gpu_eff:0.9 ~cpu_eff:1.0
            ~accesses:
              [
                Workload.read ~ghosted:true "grid_a";
                Workload.read_write "grid_b";
                Workload.read "wx";
                Workload.read "wy";
                Workload.read "bc_x";
                Workload.read "bc_y";
              ]
            ();
          Workload.task_decl ~name:"increment" ~work_elems:cells ~flops_per_elem:2.0
            ~group_size:shards ~gpu_eff:0.8 ~cpu_eff:1.0
            ~accesses:
              [
                Workload.read_write "grid_a";
                Workload.read "grid_b";
                Workload.read "mask";
                Workload.read_write "bc_x";
                Workload.read_write "bc_y";
                Workload.write "norm";
              ]
            ();
        ]
      in
      Workload.build ~name:(Printf.sprintf "Stencil-%s" input) ~iterations:3 ~arrays
        ~tasks

let custom_mapping g machine =
  App_util.custom_mapping ~zc_arrays:[ "bc_x"; "bc_y"; "norm" ] g machine
