let name = "Maestro"

let hf_comps =
  [ ("hf_cons", 10); ("hf_prim", 12); ("hf_flux", 10); ("hf_rhs", 10); ("hf_props", 4) ]

let lf_task_names =
  [ "lf_bc"; "lf_props"; "lf_eos"; "lf_grad"; "lf_flux_x"; "lf_flux_y"; "lf_flux_z";
    "lf_chem"; "lf_sum"; "lf_update"; "lf_prim_up"; "lf_dt"; "lf_out" ]

let graph ?(hf_frac = 0.998) ?(fb_per_node = 64e9) ~nodes ~n_lf ~resolution () =
  if n_lf < 0 then invalid_arg "Maestro.graph: n_lf must be non-negative";
  if resolution <= 0 then invalid_arg "Maestro.graph: resolution must be positive";
  let shards = App_util.pieces_per_node * nodes in
  let comps_total =
    List.fold_left (fun acc (_, c) -> acc + c) 0 hf_comps |> float_of_int
  in
  let hf_cells =
    hf_frac *. fb_per_node *. float_of_int nodes /. (comps_total *. 8.0)
  in
  let hf_halo = Float.min 0.3 (2.0 *. float_of_int shards /. (hf_cells ** (1.0 /. 3.0))) in
  let a ?(comps = 1) ?(halo_frac = 0.0) n elems =
    Workload.array_decl ~name:n ~elems ~comps ~halo_frac ()
  in
  let hf_arrays =
    List.map
      (fun (n, c) ->
        a n hf_cells ~comps:c ~halo_frac:(if n = "hf_prim" then hf_halo else 0.0))
      hf_comps
    @ [ a "hf_diag" (float_of_int shards *. 8.0) ]
  in
  let r = Workload.read and w = Workload.write and rw = Workload.read_write in
  let gpu_only = [ Kinds.Gpu ] in
  let hf_task tname scale flops accesses =
    Workload.task_decl ~name:tname ~work_elems:(scale *. hf_cells) ~flops_per_elem:flops
      ~group_size:shards ~variants:gpu_only ~gpu_eff:1.0 ~accesses ()
  in
  let hf_tasks =
    [
      hf_task "hf_flux" 1.0 150.0 [ r ~ghosted:true "hf_prim"; r "hf_props"; w "hf_flux" ];
      hf_task "hf_chem" 1.0 3000.0 [ r "hf_prim"; r "hf_props"; w "hf_rhs" ];
      hf_task "hf_sum" 1.0 40.0 [ r "hf_flux"; rw "hf_rhs" ];
      hf_task "hf_update" 1.0 30.0 [ r "hf_rhs"; rw "hf_cons" ];
      hf_task "hf_prim_up" 1.0 100.0 [ r "hf_cons"; w "hf_prim" ];
      hf_task "hf_diag_out" 0.05 10.0 [ r "hf_cons"; w "hf_diag" ];
    ]
  in
  let lf_arrays, lf_tasks =
    if n_lf = 0 then ([], [])
    else begin
      let cells = float_of_int n_lf *. float_of_int (resolution * resolution * resolution) in
      let arrays =
        [
          a "lf_cons" cells ~comps:10;
          a "lf_prim" cells ~comps:12;
          a "lf_grad" cells ~comps:9;
          a "lf_flux" cells ~comps:10;
          a "lf_rhs" cells ~comps:10;
          a "lf_src" cells ~comps:10;
          a "lf_props" cells ~comps:4;
          a "lf_temp" cells ~comps:1;
          a "lf_diag" (float_of_int n_lf *. 8.0);
        ]
      in
      let lf_task tname scale flops accesses =
        Workload.task_decl ~name:tname ~work_elems:(scale *. cells) ~flops_per_elem:flops
          ~group_size:n_lf ~gpu_eff:0.9 ~cpu_eff:1.0 ~accesses ()
      in
      let tasks =
        [
          lf_task "lf_bc" 0.1 60.0 [ rw "lf_prim"; r "lf_diag" ];
          lf_task "lf_props" 1.0 180.0 [ r "lf_prim"; w "lf_props"; w "lf_temp" ];
          lf_task "lf_eos" 1.0 300.0 [ r "lf_cons"; w "lf_prim" ];
          lf_task "lf_grad" 1.0 240.0 [ r "lf_prim"; w "lf_grad" ];
          lf_task "lf_flux_x" 1.0 450.0 [ r "lf_prim"; r "lf_grad"; w "lf_flux" ];
          lf_task "lf_flux_y" 1.0 450.0 [ r "lf_prim"; rw "lf_flux" ];
          lf_task "lf_flux_z" 1.0 450.0 [ r "lf_prim"; rw "lf_flux" ];
          lf_task "lf_chem" 1.0 40000.0 [ r "lf_prim"; r "lf_temp"; w "lf_src" ];
          lf_task "lf_sum" 1.0 120.0 [ r "lf_flux"; r "lf_src"; w "lf_rhs" ];
          lf_task "lf_update" 1.0 90.0 [ r "lf_rhs"; rw "lf_cons" ];
          lf_task "lf_prim_up" 1.0 300.0 [ r "lf_cons"; w "lf_prim" ];
          lf_task "lf_dt" 0.2 60.0 [ r "lf_prim"; w "lf_diag" ];
          lf_task "lf_out" 0.1 30.0 [ r "lf_cons"; rw "lf_diag" ];
        ]
      in
      (arrays, tasks)
    end
  in
  Workload.build
    ~name:(Printf.sprintf "Maestro-lf%dr%d" n_lf resolution)
    ~iterations:3
    ~arrays:(hf_arrays @ lf_arrays)
    ~tasks:(hf_tasks @ lf_tasks)

let graph_of_input ~nodes ~input =
  match App_util.parse_pair ~tag1:'l' ~tag2:'r' (String.concat "" (String.split_on_char 'f' input)) with
  | Some (n_lf, resolution) -> graph ~nodes ~n_lf ~resolution ()
  | None -> invalid_arg ("Maestro.graph_of_input: bad input " ^ input)

let inputs ~nodes:_ =
  List.concat_map
    (fun r -> List.map (fun n -> Printf.sprintf "lf%dr%d" n r) [ 4; 8; 16; 32; 64 ])
    [ 16; 32 ]

let is_lf (t : Graph.task) = List.mem t.tname lf_task_names

let strategy ~proc ~mem g machine =
  let base = Mapping.default_start g machine in
  Mapping.make g
    ~distribute:(fun t -> Mapping.distribute_of base t.tid)
    ~proc:(fun t -> if is_lf t then proc else Mapping.proc_of base t.tid)
    ~mem:(fun c ->
      if is_lf (Graph.task g c.owner) then mem else Mapping.mem_of base c.cid)

let lf_cpu_sys g machine = strategy ~proc:Kinds.Cpu ~mem:Kinds.System g machine
let lf_gpu_zc g machine = strategy ~proc:Kinds.Gpu ~mem:Kinds.Zero_copy g machine
let custom_mapping = lf_gpu_zc
