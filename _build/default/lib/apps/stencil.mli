(** Stencil: 2D structured stencil from the Parallel Research Kernels
    (Figure 5: 2 group tasks, 12 collection arguments).

    Per time step, [stencil] applies a radius-2 star stencil to grid A
    producing B (reading A's ghost rows from neighbouring pieces) and
    [increment] bumps A.  Both tasks are bandwidth-bound (≈ 2 flops per
    touched byte), which is what lets socket-aggregate CPU mappings and
    System/Zero-Copy data placements compete with the GPU at small and
    medium grids (§5, Figure 6b discussion).  Inputs are named
    [<X>x<Y>] grid dimensions. *)

val name : string
val graph : nodes:int -> input:string -> Graph.t
val inputs : nodes:int -> string list
val custom_mapping : Graph.t -> Machine.t -> Mapping.t
(** The hand-written mapper follows the default strategy (it matches
    the default within noise in Figure 6b), with the small boundary
    arrays in Zero-Copy. *)
