(** Pennant: Lagrangian staggered-grid hydrodynamics mini-app
    (Ferenbaugh) — the paper's most complex benchmark: 31 group tasks
    and 97 collection arguments per cycle (Figure 5).

    The cycle follows the real mini-app's phase structure: geometry
    (corner/volume calculations over sides), state (EOS — the
    flop-heavy [calc_state_gas]), artificial viscosity (the QCS
    tasks), force accumulation with ghosted corner-to-point scatters,
    point advancement, work/energy updates, and the dt reductions.
    Zones, points (shared at piece boundaries → overlap edges), and
    sides (4× zones) size the collections; inputs are [<X>x<Y>] zone
    grids. *)

val name : string
val graph : nodes:int -> input:string -> Graph.t
val graph_of_zones : nodes:int -> zones:float -> Graph.t
(** Direct control of the zone count — used by the memory-constrained
    experiment (Figure 8) to construct inputs a fixed percentage above
    the Frame-Buffer capacity. *)

val inputs : nodes:int -> string list
val bytes_per_zone : float
(** Total resident bytes per zone across all collections (for
    capacity arithmetic in the Figure 8 harness). *)

val custom_mapping : Graph.t -> Machine.t -> Mapping.t
(** Hand-written mapper: everything on GPU with the shared point
    arrays in Zero-Copy. *)
