let name = "HTR"

let base_inputs = [ (8, 8, 9); (16, 16, 18); (32, 32, 36); (64, 64, 72); (128, 128, 144) ]

(* Weak scaling doubles Y per doubling of nodes (the paper's 2-node
   list is 8x16y9z..., 4-node 8x32y9z..., 8-node 8x64y9z...). *)
let inputs ~nodes =
  List.map (fun (x, y, z) -> Printf.sprintf "%dx%dy%dz" x (y * nodes) z) base_inputs

(* (name, work scale, flops/elem, gpu_eff, cpu_eff, accesses) *)
let phases =
  let r ?(g = false) a = Workload.read ~ghosted:g a in
  let w a = Workload.write a in
  let rw a = Workload.read_write a in
  [
    ("bc_x_lo", 0.02, 40.0, 0.2, 1.0, [ r "prim"; rw "bc_x" ]);
    ("bc_x_hi", 0.02, 40.0, 0.2, 1.0, [ r "prim"; rw "bc_x" ]);
    ("bc_y_lo", 0.02, 40.0, 0.2, 1.0, [ r "prim"; rw "bc_y" ]);
    ("bc_y_hi", 0.02, 40.0, 0.2, 1.0, [ r "prim"; rw "bc_y" ]);
    ("bc_z_lo", 0.02, 40.0, 0.2, 1.0, [ r "prim"; rw "bc_z" ]);
    ("bc_z_hi", 0.02, 40.0, 0.2, 1.0, [ r "prim"; rw "bc_z" ]);
    ("update_props", 1.0, 60.0, 0.8, 1.0, [ r "prim"; w "props"; w "temp" ]);
    ("compute_eos", 1.0, 100.0, 0.9, 1.0, [ r "cons"; w "prim"; r "props" ]);
    ("gradients", 1.0, 80.0, 0.9, 1.0, [ r ~g:true "prim"; w "grad"; r "metrics" ]);
    ("visc_props", 1.0, 30.0, 0.8, 1.0, [ r "temp"; rw "props" ]);
    ("flux_x", 1.0, 150.0, 0.9, 1.0, [ r ~g:true "prim"; r "grad"; r "metrics"; w "flux_x" ]);
    ("flux_y", 1.0, 150.0, 0.9, 1.0, [ r ~g:true "prim"; r "grad"; r "metrics"; w "flux_y" ]);
    ("flux_z", 1.0, 150.0, 0.9, 1.0, [ r ~g:true "prim"; r "grad"; r "metrics"; w "flux_z" ]);
    ("riemann_x", 1.0, 60.0, 0.9, 1.0, [ rw "flux_x"; r "prim" ]);
    ("riemann_y", 1.0, 60.0, 0.9, 1.0, [ rw "flux_y"; r "prim" ]);
    ("riemann_z", 1.0, 60.0, 0.9, 1.0, [ rw "flux_z"; r "prim" ]);
    ("sum_fluxes", 1.0, 40.0, 0.8, 1.0, [ r "flux_x"; r "flux_y"; r "flux_z"; w "rhs" ]);
    ("chemistry", 1.0, 20000.0, 1.0, 0.8, [ r "prim"; r "temp"; w "chem_src" ]);
    ("add_chem", 1.0, 20.0, 0.7, 1.0, [ r "chem_src"; rw "rhs" ]);
    ("rk_stage1", 1.0, 20.0, 0.8, 1.0, [ r "rhs"; rw "cons" ]);
    ("rk_stage2", 1.0, 20.0, 0.8, 1.0, [ r "rhs"; rw "cons" ]);
    ("rk_stage3", 1.0, 20.0, 0.8, 1.0, [ r "rhs"; rw "cons" ]);
    ("update_prim", 1.0, 100.0, 0.9, 1.0, [ r "cons"; w "prim"; r "props" ]);
    ("compute_dt", 1.0, 30.0, 0.5, 1.0, [ r "prim"; r "temp"; w "diag" ]);
    ("avg_diag", 0.1, 20.0, 0.3, 1.0, [ rw "diag"; r "cons" ]);
    ("probe_output", 0.05, 10.0, 0.3, 1.0, [ r "prim"; r "temp"; w "diag" ]);
    ("stats_x", 0.1, 25.0, 0.4, 1.0, [ r "cons"; r "prim"; w "diag" ]);
    ("sync_step", 0.01, 5.0, 0.2, 1.0, [ r "diag"; rw "cons" ]);
  ]

let graph ~nodes ~input =
  match App_util.parse_xyz input with
  | None -> invalid_arg ("HTR.graph: bad input " ^ input)
  | Some (x, y, z) ->
      let shards = App_util.pieces_per_node * nodes in
      let cells = float_of_int (x * y * z) in
      (* pieces split along Y: two ghost planes per interface *)
      let halo =
        Float.min 0.4 (2.0 *. float_of_int shards /. float_of_int (max 1 y))
      in
      let surface = cells /. float_of_int (max 1 z) in
      let a ?(comps = 1) ?(halo_frac = 0.0) n elems =
        Workload.array_decl ~name:n ~elems ~comps ~halo_frac ()
      in
      let arrays =
        [
          a "cons" cells ~comps:10;
          a "prim" cells ~comps:12 ~halo_frac:halo;
          a "grad" cells ~comps:9;
          a "flux_x" cells ~comps:10;
          a "flux_y" cells ~comps:10;
          a "flux_z" cells ~comps:10;
          a "rhs" cells ~comps:10;
          a "chem_src" cells ~comps:10;
          a "props" cells ~comps:4;
          a "temp" cells ~comps:1;
          a "metrics" cells ~comps:9;
          a "bc_x" surface ~comps:4;
          a "bc_y" surface ~comps:4;
          a "bc_z" surface ~comps:4;
          a "diag" (float_of_int shards *. 16.0);
        ]
      in
      let tasks =
        List.map
          (fun (tname, scale, flops, gpu_eff, cpu_eff, accesses) ->
            Workload.task_decl ~name:tname ~work_elems:(scale *. cells)
              ~flops_per_elem:flops ~group_size:shards ~gpu_eff ~cpu_eff
              ~accesses ())
          phases
      in
      Workload.build ~name:(Printf.sprintf "HTR-%s" input) ~iterations:3 ~arrays ~tasks

let custom_mapping g machine =
  App_util.custom_mapping
    ~cpu_tasks:[ "bc_x_lo"; "bc_x_hi"; "bc_y_lo"; "bc_y_hi"; "bc_z_lo"; "bc_z_hi" ]
    ~zc_arrays:[ "prim" ] g machine
