type proc_kind = Cpu | Gpu
type mem_kind = System | Zero_copy | Frame_buffer

let all_proc_kinds = [ Cpu; Gpu ]
let all_mem_kinds = [ System; Zero_copy; Frame_buffer ]

let accessible p m =
  match (p, m) with
  | Cpu, (System | Zero_copy) -> true
  | Cpu, Frame_buffer -> false
  | Gpu, (Frame_buffer | Zero_copy) -> true
  | Gpu, System -> false

let accessible_mem_kinds = function
  | Cpu -> [ System; Zero_copy ]
  | Gpu -> [ Frame_buffer; Zero_copy ]

let rank_proc = function Cpu -> 0 | Gpu -> 1
let rank_mem = function System -> 0 | Zero_copy -> 1 | Frame_buffer -> 2
let compare_proc a b = compare (rank_proc a) (rank_proc b)
let compare_mem a b = compare (rank_mem a) (rank_mem b)
let equal_proc a b = compare_proc a b = 0
let equal_mem a b = compare_mem a b = 0

let proc_kind_to_string = function Cpu -> "CPU" | Gpu -> "GPU"

let mem_kind_to_string = function
  | System -> "SYS"
  | Zero_copy -> "ZC"
  | Frame_buffer -> "FB"

let proc_kind_of_string s =
  match String.uppercase_ascii s with
  | "CPU" -> Some Cpu
  | "GPU" -> Some Gpu
  | _ -> None

let mem_kind_of_string s =
  match String.uppercase_ascii s with
  | "SYS" | "SYSTEM" -> Some System
  | "ZC" | "ZERO_COPY" | "ZEROCOPY" -> Some Zero_copy
  | "FB" | "FRAME_BUFFER" | "FRAMEBUFFER" -> Some Frame_buffer
  | _ -> None

let pp_proc ppf p = Format.pp_print_string ppf (proc_kind_to_string p)
let pp_mem ppf m = Format.pp_print_string ppf (mem_kind_to_string m)
