lib/machine/machine_codec.ml: List Machine Option Printf String
