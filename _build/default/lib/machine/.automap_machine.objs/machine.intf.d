lib/machine/machine.mli: Format Kinds
