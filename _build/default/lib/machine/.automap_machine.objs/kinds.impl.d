lib/machine/kinds.ml: Format String
