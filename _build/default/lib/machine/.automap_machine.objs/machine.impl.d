lib/machine/machine.ml: Array Format Kinds List Printf
