lib/machine/machine_codec.mli: Machine
