lib/machine/presets.mli: Machine
