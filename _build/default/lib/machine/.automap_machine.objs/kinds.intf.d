lib/machine/kinds.mli: Format
