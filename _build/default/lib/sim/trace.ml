type kind = Task_exec | Copy

type entry = {
  label : string;
  kind : kind;
  resource : string;
  start_time : float;
  duration : float;
}

type t = { mutable rev_entries : entry list; mutable n : int }

let create () = { rev_entries = []; n = 0 }

let add t e =
  t.rev_entries <- e :: t.rev_entries;
  t.n <- t.n + 1

let entries t = List.rev t.rev_entries
let length t = t.n

let clear t =
  t.rev_entries <- [];
  t.n <- 0

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* node name prefix of a resource ("node0/GPU1" -> "node0") *)
let node_of resource =
  match String.index_opt resource '/' with
  | Some i -> String.sub resource 0 i
  | None -> resource

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun e ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":\"%s\",\"tid\":\"%s\"}"
           (json_escape e.label)
           (match e.kind with Task_exec -> "task" | Copy -> "copy")
           (e.start_time *. 1e6) (e.duration *. 1e6)
           (json_escape (node_of e.resource))
           (json_escape e.resource)))
    (entries t);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let gantt ?(width = 80) t =
  let es = entries t in
  if es = [] then "(empty trace)\n"
  else begin
    let t_end =
      List.fold_left (fun acc e -> Float.max acc (e.start_time +. e.duration)) 0.0 es
    in
    let t_end = if t_end <= 0.0 then 1.0 else t_end in
    let resources =
      List.sort_uniq compare (List.map (fun e -> e.resource) es)
    in
    let name_w =
      List.fold_left (fun acc r -> max acc (String.length r)) 0 resources
    in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "%-*s |%s| 0 .. %.3g s\n" name_w "resource"
         (String.make width '-') t_end);
    List.iter
      (fun r ->
        let row = Bytes.make width ' ' in
        List.iter
          (fun e ->
            if e.resource = r then begin
              let i0 = int_of_float (e.start_time /. t_end *. float_of_int width) in
              let i1 =
                int_of_float ((e.start_time +. e.duration) /. t_end *. float_of_int width)
              in
              let i0 = max 0 (min (width - 1) i0) in
              let i1 = max i0 (min (width - 1) i1) in
              let c = match e.kind with Task_exec -> '#' | Copy -> '=' in
              for i = i0 to i1 do
                Bytes.set row i c
              done
            end)
          es;
        Buffer.add_string buf
          (Printf.sprintf "%-*s |%s|\n" name_w r (Bytes.to_string row)))
      resources;
    Buffer.contents buf
  end
