type result = {
  makespan : float;
  per_iteration : float;
  task_times : float array;
  proc_busy : float array;
  bytes_moved : float;
  channel_bytes : float array;
  n_copies : int;
  demotions : int;
}

let channel_class_names = [| "host"; "xsocket"; "pcie"; "peer"; "net" |]

type error = Placement.error

(* A dependence of one consumer instance on one producer instance:
   [bytes] must be visible at the consumer's argument memory. *)
type dep = {
  src_tid : int;
  src_shard : int;
  dst_cid : int;
  src_cid : int;
  bytes : float;
  carried : bool;
}

type event = Ready of int | Done of int

let n_channel_classes = 5

let channel_slot ~nodes:_ node = function
  | Machine.Host_local -> (node * n_channel_classes) + 0
  | Machine.Cross_socket -> (node * n_channel_classes) + 1
  | Machine.Pcie -> (node * n_channel_classes) + 2
  | Machine.Gpu_peer -> (node * n_channel_classes) + 3
  | Machine.Network -> (node * n_channel_classes) + 4
  | Machine.Same_memory -> invalid_arg "channel_slot: Same_memory"

let channel_class_index = function
  | Machine.Host_local -> 0
  | Machine.Cross_socket -> 1
  | Machine.Pcie -> 2
  | Machine.Gpu_peer -> 3
  | Machine.Network -> 4
  | Machine.Same_memory -> invalid_arg "channel_class_index: Same_memory"

let proc_resource_name (p : Machine.processor) =
  Printf.sprintf "node%d/%s%d" p.Machine.pnode
    (Kinds.proc_kind_to_string p.Machine.pkind)
    p.Machine.plocal

let run ?(noise_sigma = 0.03) ?(seed = 0) ?(fallback = false) ?iterations ?trace machine
    (g : Graph.t) mapping =
  match Placement.resolve ~fallback machine g mapping with
  | Error e -> Error e
  | Ok pl ->
      let iterations = Option.value iterations ~default:g.iterations in
      if iterations <= 0 then invalid_arg "Exec.run: iterations must be positive";
      let nt = Graph.n_tasks g in
      let offset = Array.make (nt + 1) 0 in
      for tid = 0 to nt - 1 do
        offset.(tid + 1) <- offset.(tid) + (Graph.task g tid).group_size
      done;
      let shards_per_iter = offset.(nt) in
      let n_instances = iterations * shards_per_iter in
      let inst iter tid shard = (iter * shards_per_iter) + offset.(tid) + shard in
      let tid_of = Array.make n_instances 0 in
      let shard_of = Array.make n_instances 0 in
      for iter = 0 to iterations - 1 do
        for tid = 0 to nt - 1 do
          let sz = (Graph.task g tid).group_size in
          for s = 0 to sz - 1 do
            let i = inst iter tid s in
            tid_of.(i) <- tid;
            shard_of.(i) <- s
          done
        done
      done;
      (* Intra-iteration dependence lists, computed once per producer
         (tid, shard) slot and reused for every iteration, paired with
         the consumer shard they feed; [indeg_base] is the per-consumer
         within-iteration indegree. *)
      let out_deps_with_consumer : (dep * int) list array = Array.make shards_per_iter [] in
      let indeg_base = Array.make shards_per_iter 0 in
      (* loop-carried dependencies only bind from iteration 1 onward *)
      let indeg_carried = Array.make shards_per_iter 0 in
      let owner cid = (Graph.collection g cid).owner in
      List.iter
        (fun (e : Graph.edge) ->
          let ts = owner e.src and td = owner e.dst in
          let ss = (Graph.task g ts).group_size and sd = (Graph.task g td).group_size in
          for s = 0 to sd - 1 do
            let main = if ss = sd then s else s * ss / sd in
            let add src_shard bytes =
              if src_shard >= 0 && src_shard < ss && bytes > 0.0 then begin
                let d =
                  {
                    src_tid = ts;
                    src_shard;
                    dst_cid = e.dst;
                    src_cid = e.src;
                    bytes;
                    carried = e.carried;
                  }
                in
                let slot = offset.(ts) + src_shard in
                out_deps_with_consumer.(slot) <- (d, s) :: out_deps_with_consumer.(slot);
                let counter = if e.carried then indeg_carried else indeg_base in
                counter.(offset.(td) + s) <- counter.(offset.(td) + s) + 1
              end
            in
            add main e.bytes;
            match e.pattern with
            | Pattern.Same_shard -> ()
            | Pattern.Halo { frac } ->
                add (main - 1) (e.bytes *. frac);
                add (main + 1) (e.bytes *. frac)
          done)
        g.edges;
      let rng = Rng.create seed in
      (* Pre-draw per-instance noise in a fixed order so the schedule
         does not perturb the random stream. *)
      let noise = Array.make n_instances 1.0 in
      if noise_sigma > 0.0 then
        for i = 0 to n_instances - 1 do
          noise.(i) <- Rng.lognormal rng ~sigma:noise_sigma
        done;
      let indeg = Array.make n_instances 0 in
      for iter = 0 to iterations - 1 do
        for slot = 0 to shards_per_iter - 1 do
          indeg.((iter * shards_per_iter) + slot) <-
            (indeg_base.(slot)
            + if iter > 0 then 1 + indeg_carried.(slot) else 0)
        done
      done;
      let ready_time = Array.make n_instances 0.0 in
      let proc_free = Array.make (Array.length machine.Machine.processors) 0.0 in
      let chan_free = Array.make (machine.Machine.nodes * n_channel_classes) 0.0 in
      (* per-node runtime utility processor: every instance pays the
         mapping-independent dependence-analysis/dispatch cost here *)
      let dispatch_free = Array.make machine.Machine.nodes 0.0 in
      let dispatch_cost = machine.Machine.compute.Machine.runtime_dispatch in
      let events : event Heap.t = Heap.create () in
      let task_times = Array.make nt 0.0 in
      let proc_busy = Array.make (Array.length machine.Machine.processors) 0.0 in
      let bytes_moved = ref 0.0 in
      let channel_bytes = Array.make n_channel_classes 0.0 in
      let n_copies = ref 0 in
      let makespan = ref 0.0 in
      (* duration of an instance (placement-resolved memories) *)
      let duration i =
        let tid = tid_of.(i) and s = shard_of.(i) in
        let task = Graph.task g tid in
        let kind = Mapping.proc_of mapping tid in
        let d =
          Cost.task_duration machine task kind ~arg_mem:(fun c ->
              Placement.effective_mem_kind pl ~cid:c.cid ~shard:s)
        in
        d *. noise.(i)
      in
      let dep_arrived i t =
        ready_time.(i) <- Float.max ready_time.(i) t;
        indeg.(i) <- indeg.(i) - 1;
        if indeg.(i) = 0 then Heap.push events ready_time.(i) (Ready i)
      in
      for i = 0 to n_instances - 1 do
        if indeg.(i) = 0 then Heap.push events 0.0 (Ready i)
      done;
      let iter_of i = i / shards_per_iter in
      let process_done i t_done =
        let tid = tid_of.(i) and s = shard_of.(i) and iter = iter_of i in
        makespan := Float.max !makespan t_done;
        (* next-iteration self dependence *)
        if iter + 1 < iterations then dep_arrived (inst (iter + 1) tid s) t_done;
        (* feed consumers of this iteration *)
        List.iter
          (fun (d, consumer_shard) ->
            let target_iter = if d.carried then iter + 1 else iter in
            if target_iter < iterations then begin
              let dst_tid = owner d.dst_cid in
              let ci = inst target_iter dst_tid consumer_shard in
              let src_mem = Placement.arg_memory pl ~cid:d.src_cid ~shard:d.src_shard in
              let dst_mem = Placement.arg_memory pl ~cid:d.dst_cid ~shard:consumer_shard in
              if src_mem.Machine.mid = dst_mem.Machine.mid then dep_arrived ci t_done
              else begin
                let cost =
                  Cost.copy_seconds machine ~src:src_mem ~dst:dst_mem ~bytes:d.bytes
                in
                let ch = Machine.channel_between machine src_mem dst_mem in
                let slot =
                  channel_slot ~nodes:machine.Machine.nodes src_mem.Machine.mnode ch
                in
                let start = Float.max t_done chan_free.(slot) in
                let arrival = start +. cost in
                chan_free.(slot) <- arrival;
                bytes_moved := !bytes_moved +. d.bytes;
                channel_bytes.(channel_class_index ch) <-
                  channel_bytes.(channel_class_index ch) +. d.bytes;
                incr n_copies;
                (match trace with
                | Some collector ->
                    Trace.add collector
                      {
                        Trace.label =
                          Printf.sprintf "%s -> %s"
                            (Graph.collection g d.src_cid).Graph.cname
                            (Graph.collection g d.dst_cid).Graph.cname;
                        kind = Trace.Copy;
                        resource =
                          Printf.sprintf "node%d/%s" src_mem.Machine.mnode
                            channel_class_names.(channel_class_index ch);
                        start_time = start;
                        duration = cost;
                      }
                | None -> ());
                dep_arrived ci arrival
              end
            end)
          out_deps_with_consumer.(offset.(tid) + s)
      in
      let rec loop () =
        match Heap.pop events with
        | None -> ()
        | Some (t, Ready i) ->
            let p = Placement.processor pl ~tid:tid_of.(i) ~shard:shard_of.(i) in
            let node = p.Machine.pnode in
            let dispatched = Float.max t dispatch_free.(node) +. dispatch_cost in
            dispatch_free.(node) <- dispatched;
            let start = Float.max dispatched proc_free.(p.Machine.pid) in
            let d = duration i in
            let t_done = start +. d in
            proc_free.(p.Machine.pid) <- t_done;
            proc_busy.(p.Machine.pid) <- proc_busy.(p.Machine.pid) +. d;
            task_times.(tid_of.(i)) <- task_times.(tid_of.(i)) +. d;
            (match trace with
            | Some collector ->
                Trace.add collector
                  {
                    Trace.label =
                      Printf.sprintf "%s.%d"
                        (Graph.task g tid_of.(i)).Graph.tname
                        shard_of.(i);
                    kind = Trace.Task_exec;
                    resource = proc_resource_name p;
                    start_time = start;
                    duration = d;
                  }
            | None -> ());
            Heap.push events t_done (Done i);
            loop ()
        | Some (t, Done i) ->
            process_done i t;
            loop ()
      in
      loop ();
      Ok
        {
          makespan = !makespan;
          per_iteration = !makespan /. float_of_int iterations;
          task_times;
          proc_busy;
          bytes_moved = !bytes_moved;
          channel_bytes;
          n_copies = !n_copies;
          demotions = Placement.demotions pl;
        }

let profile ?iterations machine g mapping =
  match run ~noise_sigma:0.0 ?iterations machine g mapping with
  | Ok r -> Array.to_list (Array.mapi (fun tid t -> (tid, t)) r.task_times)
  | Error e -> failwith ("Exec.profile: " ^ Placement.error_to_string e)
