(** Execution-trace capture for the simulator.

    When a collector is supplied to {!Exec.run}, every task-instance
    execution and every explicit copy is recorded with its resource,
    start time and duration.  Two renderers are provided: a Chrome
    trace-event JSON export (load in chrome://tracing or Perfetto) and
    a quick ASCII Gantt chart for terminals. *)

type kind = Task_exec | Copy

type entry = {
  label : string;       (** "task.shard" or "src->dst" *)
  kind : kind;
  resource : string;    (** "node0/GPU0", "node1/CPU1", "node0/pcie", ... *)
  start_time : float;   (** seconds *)
  duration : float;
}

type t
(** Mutable collector. *)

val create : unit -> t
val add : t -> entry -> unit
val entries : t -> entry list
(** In chronological (insertion) order. *)

val length : t -> int
val clear : t -> unit

val to_chrome_json : t -> string
(** Chrome trace-event format ("traceEvents" array of complete
    events); timestamps in microseconds, one pid per node, one tid per
    resource. *)

val gantt : ?width:int -> t -> string
(** ASCII Gantt chart: one row per resource, time on the x axis,
    [#] for task execution and [=] for copies. *)
