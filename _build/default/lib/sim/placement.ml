type t = {
  machine : Machine.t;
  graph : Graph.t;
  procs : Machine.processor array array;  (* [tid].(shard) *)
  mems : Machine.memory array array;      (* [cid].(shard) *)
  usage : float array;                    (* bytes per mid *)
  demotions : int;
}

type error = Invalid_mapping of string | Out_of_memory of string

let error_to_string = function
  | Invalid_mapping s -> "invalid mapping: " ^ s
  | Out_of_memory s -> "out of memory: " ^ s

(* Distribution of [shards] across [nodes] (§3.1): blocked puts shard s
   on node s·nodes/shards (neighbouring shards share a node — good for
   halo locality); cyclic deals shards round-robin (better load spread,
   more neighbour traffic).  The paper fixes blocked; cyclic is part of
   the extended search space. *)
let node_of_shard ~distribute ~strategy ~nodes ~shards s =
  if not distribute then 0
  else
    match (strategy : Mapping.dist_strategy) with
    | Mapping.Cyclic -> s mod nodes
    | Mapping.Blocked -> if shards >= nodes then s * nodes / shards else s

(* Round-robin across the same-kind processors of the node (§3.2 and
   the Circuit discussion in §5: AutoMap uses a round-robin strategy
   within the selected kind). *)
let local_of_shard ~per_node_rank ~nprocs = per_node_rank mod nprocs

let place_shards machine (g : Graph.t) mapping tid =
  let task = Graph.task g tid in
  let kind = Mapping.proc_of mapping tid in
  let distribute = Mapping.distribute_of mapping tid in
  let strategy = Mapping.strategy_of mapping tid in
  let nodes = machine.Machine.nodes in
  let nprocs = Machine.procs_of_kind_per_node machine kind in
  let shards = task.group_size in
  let node_rank = Array.make nodes 0 in
  Array.init shards (fun s ->
      let node = node_of_shard ~distribute ~strategy ~nodes ~shards s in
      let rank = node_rank.(node) in
      node_rank.(node) <- rank + 1;
      Machine.proc machine ~node ~kind
        ~local:(local_of_shard ~per_node_rank:rank ~nprocs))

exception Oom of string

let resolve ?(fallback = false) machine (g : Graph.t) mapping =
  match Mapping.validate g machine mapping with
  | Error e -> Error (Invalid_mapping e)
  | Ok () -> (
      let nt = Graph.n_tasks g in
      let cols = Graph.collections g in
      let nc = List.length cols in
      let procs = Array.init nt (place_shards machine g mapping) in
      let mems = Array.make nc [||] in
      let usage = Array.make (Array.length machine.Machine.memories) 0.0 in
      let demotions = ref 0 in
      (* Alias detection: an argument colocated with another instance of
         the same logical data references that physical instance and
         costs no extra capacity.  Two arguments refer to the same data
         when an edge connects them (producer/consumer) or when they
         fully overlap (|c1∩c2| equals the smaller argument — e.g. two
         readers of the same input region).  Halo consumers additionally
         hold a small ghost region we do not charge. *)
      let producers = Array.make nc [] in
      List.iter
        (fun (e : Graph.edge) -> producers.(e.dst) <- e.src :: producers.(e.dst))
        g.edges;
      List.iter
        (fun (c1, c2, w) ->
          let b1 = (Graph.collection g c1).Graph.bytes
          and b2 = (Graph.collection g c2).Graph.bytes in
          if w >= 0.999 *. Float.min b1 b2 then begin
            producers.(c1) <- c2 :: producers.(c1);
            producers.(c2) <- c1 :: producers.(c2)
          end)
        g.overlaps;
      let place_arg (task : Graph.task) (c : Graph.collection) =
        let shards = task.group_size in
        let arr =
          Array.init shards (fun s ->
              Machine.closest_memory machine procs.(task.tid).(s) (Mapping.mem_of mapping c.cid))
        in
        (* Capacity accounting with aliasing: a Same_shard consumer
           whose instance coincides with its producer's reuses the
           physical instance and costs nothing. *)
        for s = 0 to shards - 1 do
          let aliased =
            List.exists
              (fun src_cid ->
                let src_task = Graph.task g (Graph.collection g src_cid).owner in
                let src_shards = src_task.group_size in
                let src_shard = if src_shards = shards then s else s * src_shards / shards in
                Array.length mems.(src_cid) > src_shard
                && mems.(src_cid).(src_shard).Machine.mid = arr.(s).Machine.mid)
              producers.(c.cid)
          in
          if not aliased then begin
            let charge mem =
              let mid = mem.Machine.mid in
              if usage.(mid) +. c.bytes > mem.Machine.capacity then None
              else begin
                usage.(mid) <- usage.(mid) +. c.bytes;
                Some mem
              end
            in
            match charge arr.(s) with
            | Some _ -> ()
            | None when not fallback ->
                raise
                  (Oom
                     (Printf.sprintf "%s of node %d full placing %s (shard %d)"
                        (Kinds.mem_kind_to_string arr.(s).Machine.mkind)
                        arr.(s).Machine.mnode c.cname s))
            | None -> (
                (* walk the priority list for a kind with room *)
                let proc = procs.(task.tid).(s) in
                let rec try_kinds = function
                  | [] ->
                      raise
                        (Oom
                           (Printf.sprintf "no memory accessible from %s can hold %s (shard %d)"
                              (Kinds.proc_kind_to_string proc.Machine.pkind)
                              c.cname s))
                  | k :: rest -> (
                      let mem = Machine.closest_memory machine proc k in
                      match charge mem with
                      | Some m ->
                          incr demotions;
                          m
                      | None -> try_kinds rest)
                in
                match Mapping.memory_priority mapping task c.cid with
                | [] -> assert false
                | _ :: lower -> arr.(s) <- try_kinds lower)
          end
        done;
        mems.(c.cid) <- arr
      in
      try
        List.iter
          (fun (task : Graph.task) -> List.iter (place_arg task) task.args)
          (Graph.topological_order g);
        Ok { machine; graph = g; procs; mems; usage; demotions = !demotions }
      with Oom msg -> Error (Out_of_memory msg))

let shards t tid = Array.length t.procs.(tid)
let processor t ~tid ~shard = t.procs.(tid).(shard)
let arg_memory t ~cid ~shard = t.mems.(cid).(shard)
let effective_mem_kind t ~cid ~shard = (arg_memory t ~cid ~shard).Machine.mkind
let demotions t = t.demotions
let bytes_resident t (mem : Machine.memory) = t.usage.(mem.Machine.mid)
