(** Concrete placement: from kind-level mapping decisions to devices.

    This is the deterministic "runtime logic" half of §3.2's
    factorization.  Given a mapping, every shard of every group task is
    assigned a concrete processor — blocked across nodes (or all on the
    leader node when the distribution bit is off, §3.1), round-robin
    across the same-kind processors within a node — and every
    collection argument of that shard is materialized in the memory of
    the mapped kind closest to that processor.

    Placement also performs the capacity check of §3.1/§5.2: the bytes
    resident in each physical memory are accumulated, and a mapping
    that exceeds a capacity either fails with [Out_of_memory] (strict
    mode, the behaviour the search relies on) or, in fallback mode,
    demotes the argument along its memory priority list (§3.1's
    generalized mapping). *)

type t

type error =
  | Invalid_mapping of string    (** violates §4.2 constraint (1) *)
  | Out_of_memory of string      (** a memory capacity is exceeded *)

val resolve :
  ?fallback:bool -> Machine.t -> Graph.t -> Mapping.t -> (t, error) Stdlib.result
(** [fallback] defaults to false (strict). *)

val shards : t -> int -> int
(** Number of shards of task [tid] (its group size). *)

val processor : t -> tid:int -> shard:int -> Machine.processor

val arg_memory : t -> cid:int -> shard:int -> Machine.memory
(** The memory instance actually holding the argument for that shard
    (after any fallback demotion). *)

val effective_mem_kind : t -> cid:int -> shard:int -> Kinds.mem_kind

val demotions : t -> int
(** How many (argument, shard) placements fell back to a lower-priority
    memory kind (0 in strict mode). *)

val bytes_resident : t -> Machine.memory -> float
(** Bytes accounted to a concrete memory by this placement. *)

val error_to_string : error -> string
