(** Energy model — the "other metrics" extension of §3.3 ("AutoMap is
    suitable for minimizing other metrics (e.g., power consumption)").

    Energy of a run is integrated from the simulator's telemetry:

      E = Σ_proc  busy·P_busy(kind) + (makespan − busy)·P_idle(kind)
        + Σ_chan  bytes · J_per_byte(channel class)

    Plugging {!joules_per_iteration} into the evaluator's objective
    makes the whole search stack optimize energy (or energy-delay
    product) instead of execution time — CPU-heavy mappings often win
    on energy even where GPUs win on time, which the ablation bench
    demonstrates. *)

type power_model = {
  cpu_busy_w : float;   (** per CPU processor (socket group), watts *)
  cpu_idle_w : float;
  gpu_busy_w : float;
  gpu_idle_w : float;
  pj_per_byte_local : float;  (** host/cross-socket/PCIe/peer traffic, pJ/B *)
  pj_per_byte_net : float;
}

val default_power : power_model
(** Representative numbers for the *application's incremental draw*:
    CPU socket 90 W busy / 12 W idle, GPU 250 W busy / 15 W idle,
    150 pJ/B local, 600 pJ/B network.  Busy-dominated on purpose: the
    baseline (OS, fans, PSU) is excluded, as a tuner can only influence
    the increment. *)

val joules : Machine.t -> power_model -> Exec.result -> float
(** Total energy of a simulated run. *)

val joules_per_iteration : Machine.t -> power_model -> Exec.result -> float

val edp_per_iteration : Machine.t -> power_model -> Exec.result -> float
(** Energy-delay product (J·s) per iteration. *)
