let efficiency (t : Graph.task) = function
  | Kinds.Cpu -> t.cpu_efficiency
  | Kinds.Gpu -> t.gpu_efficiency

let task_duration machine (t : Graph.task) kind ~arg_mem =
  let rate = Machine.compute_rate machine kind *. efficiency t kind in
  let compute = if t.flops = 0.0 then 0.0 else t.flops /. rate in
  let memory =
    List.fold_left
      (fun acc (c : Graph.collection) ->
        acc +. (c.bytes /. Machine.exec_bandwidth machine kind (arg_mem c)))
      0.0 t.args
  in
  Machine.launch_overhead machine kind +. Float.max compute memory

let copy_seconds machine ~src ~dst ~bytes = Machine.copy_cost machine ~src ~dst ~bytes
