(** Cost model for task execution (§4's dynamic-analysis substitute).

    The duration of one shard of a group task on a processor combines a
    fixed launch overhead, a compute term (useful work over the
    processor's effective rate for the task), and a memory term: the
    bytes of every collection argument streamed at the effective
    bandwidth the processor sees against the argument's memory kind.
    Compute and memory overlap (pipelined kernels), so the model takes
    their max:

      duration = launch(k) + max(flops / (rate(k)·eff(t,k)),
                                 Σ_i bytes(c_i) / bw(k, mem(c_i)))

    The FB-vs-ZC bandwidth gap and the GPU launch overhead are what
    make the paper's trade-offs (fast compute vs. data movement, §4.2)
    appear. *)

val task_duration :
  Machine.t ->
  Graph.task ->
  Kinds.proc_kind ->
  arg_mem:(Graph.collection -> Kinds.mem_kind) ->
  float
(** Duration in seconds of one shard, noise-free. *)

val efficiency : Graph.task -> Kinds.proc_kind -> float

val copy_seconds : Machine.t -> src:Machine.memory -> dst:Machine.memory -> bytes:float -> float
(** Re-export of {!Machine.copy_cost} for the simulator. *)
