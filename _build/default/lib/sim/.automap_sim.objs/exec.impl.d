lib/sim/exec.ml: Array Cost Float Graph Heap Kinds List Machine Mapping Option Pattern Placement Printf Rng Trace
