lib/sim/exec.mli: Graph Machine Mapping Placement Stdlib Trace
