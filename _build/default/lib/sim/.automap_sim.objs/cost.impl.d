lib/sim/cost.ml: Float Graph Kinds List Machine
