lib/sim/placement.mli: Graph Kinds Machine Mapping Stdlib
