lib/sim/placement.ml: Array Float Graph Kinds List Machine Mapping Printf
