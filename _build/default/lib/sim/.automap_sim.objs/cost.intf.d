lib/sim/cost.mli: Graph Kinds Machine
