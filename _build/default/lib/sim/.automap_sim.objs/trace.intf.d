lib/sim/trace.mli:
