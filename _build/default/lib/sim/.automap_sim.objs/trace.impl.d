lib/sim/trace.ml: Buffer Bytes Float List Printf String
