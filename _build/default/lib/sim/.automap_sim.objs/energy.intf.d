lib/sim/energy.mli: Exec Machine
