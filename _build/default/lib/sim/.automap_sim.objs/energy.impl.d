lib/sim/energy.ml: Array Exec Float Kinds Machine
