type power_model = {
  cpu_busy_w : float;
  cpu_idle_w : float;
  gpu_busy_w : float;
  gpu_idle_w : float;
  pj_per_byte_local : float;
  pj_per_byte_net : float;
}

let default_power =
  {
    cpu_busy_w = 90.0;
    cpu_idle_w = 12.0;
    gpu_busy_w = 250.0;
    gpu_idle_w = 15.0;
    pj_per_byte_local = 150.0;
    pj_per_byte_net = 600.0;
  }

let joules machine pm (r : Exec.result) =
  let span = r.Exec.makespan in
  let compute_energy =
    Array.fold_left
      (fun acc (p : Machine.processor) ->
        let busy = r.Exec.proc_busy.(p.Machine.pid) in
        let busy = Float.min busy span in
        let busy_w, idle_w =
          match p.Machine.pkind with
          | Kinds.Cpu -> (pm.cpu_busy_w, pm.cpu_idle_w)
          | Kinds.Gpu -> (pm.gpu_busy_w, pm.gpu_idle_w)
        in
        acc +. (busy *. busy_w) +. ((span -. busy) *. idle_w))
      0.0 machine.Machine.processors
  in
  let traffic_energy =
    let local = ref 0.0 and net = ref 0.0 in
    Array.iteri
      (fun i b ->
        if Exec.channel_class_names.(i) = "net" then net := !net +. b
        else local := !local +. b)
      r.Exec.channel_bytes;
    ((!local *. pm.pj_per_byte_local) +. (!net *. pm.pj_per_byte_net)) *. 1e-12
  in
  compute_energy +. traffic_energy

let joules_per_iteration machine pm (r : Exec.result) =
  joules machine pm r *. (r.Exec.per_iteration /. Float.max r.Exec.makespan 1e-300)

let edp_per_iteration machine pm (r : Exec.result) =
  joules_per_iteration machine pm r *. r.Exec.per_iteration
