(** Discrete-event execution of a task graph under a mapping.

    This is the stand-in for running the application on the cluster
    (the paper's EvaluateMapping, Algorithm 1 line 21).  The simulator
    models:

    - one FIFO resource per processor; shards run where {!Placement}
      put them, for the duration given by {!Cost} (× measurement
      noise);
    - explicit data movement: for every dependence whose producer and
      consumer instances live in different memories, a copy is serialized
      on the connecting channel (host, cross-socket, PCIe, GPU-peer or
      network — §2's "a mapping may imply data movement not explicit in
      the task graph");
    - halo patterns: neighbour shards additionally receive their ghost
      fraction, crossing the network when the neighbour lives on
      another node;
    - iterative execution: the graph body repeats [iterations] times,
      each task shard serialized with its previous iteration, allowing
      cross-iteration pipelining as in Legion;
    - capacity failures surfaced from placement (§5.2).

    Runs are deterministic given the noise seed. *)

type result = {
  makespan : float;        (** seconds for all iterations *)
  per_iteration : float;   (** makespan / iterations *)
  task_times : float array;(** per-tid busy time, summed over shards/iterations *)
  proc_busy : float array; (** per-pid busy seconds (the energy model's input) *)
  bytes_moved : float;     (** total copied bytes *)
  channel_bytes : float array;
      (** bytes per channel class, indexed like {!channel_class_names} *)
  n_copies : int;
  demotions : int;         (** fallback demotions performed by placement *)
}

val channel_class_names : string array
(** ["host"; "xsocket"; "pcie"; "peer"; "net"] — index space of
    [channel_bytes]. *)

type error = Placement.error

val run :
  ?noise_sigma:float ->
  ?seed:int ->
  ?fallback:bool ->
  ?iterations:int ->
  ?trace:Trace.t ->
  Machine.t ->
  Graph.t ->
  Mapping.t ->
  (result, error) Stdlib.result
(** [noise_sigma] (default 0.03) is the per-instance lognormal noise;
    0 gives noise-free runs.  [seed] defaults to 0.  [iterations]
    overrides the graph's iteration count.  [fallback] enables §3.1's
    priority-list demotion instead of failing on OOM.  When [trace] is
    given, every task execution and copy is recorded in it. *)

val profile :
  ?iterations:int -> Machine.t -> Graph.t -> Mapping.t -> (int * float) list
(** Noise-free per-task times under a mapping — the profiling run of
    §3.3 that seeds the search's task ordering.  Raises [Failure] if
    the mapping cannot be placed. *)
