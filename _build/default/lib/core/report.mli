(** Textual mapping visualization in the style of Figures 2 and 3.

    For each task: the processor kind it runs on; under it, one line
    per collection argument with the memory kind and a bar showing the
    argument's size relative to the application's largest argument
    (the rectangles of Figure 3). *)

val mapping : Graph.t -> Mapping.t -> string
(** Full rendering. *)

val mapping_diff : Graph.t -> Mapping.t -> Mapping.t -> string
(** Only the decisions where the two mappings differ (e.g., AutoMap's
    discovery vs. the default strategy) — one line per difference,
    empty string if identical. *)

val placement_summary : Graph.t -> Mapping.t -> string
(** One line: how many tasks per processor kind, how many collection
    arguments per memory kind (the counts §5 quotes, e.g. "9 collection
    arguments in Zero-Copy, 2 tasks on CPU"). *)
