let bar width frac =
  let n = max 1 (int_of_float (frac *. float_of_int width)) in
  String.make n '#'

let mapping g m =
  let buf = Buffer.create 1024 in
  let largest =
    List.fold_left
      (fun acc (c : Graph.collection) -> Float.max acc c.bytes)
      1.0 (Graph.collections g)
  in
  List.iter
    (fun (task : Graph.task) ->
      Buffer.add_string buf
        (Printf.sprintf "%-20s -> %s%s\n" task.tname
           (Kinds.proc_kind_to_string (Mapping.proc_of m task.tid))
           (if Mapping.distribute_of m task.tid then " (distributed)" else " (leader)"));
      List.iter
        (fun (c : Graph.collection) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-28s %-3s %s\n" c.cname
               (Kinds.mem_kind_to_string (Mapping.mem_of m c.cid))
               (bar 24 (c.bytes /. largest))))
        task.args)
    (Graph.topological_order g);
  Buffer.contents buf

let mapping_diff g a b =
  let buf = Buffer.create 256 in
  List.iter
    (fun (task : Graph.task) ->
      if Mapping.proc_of a task.tid <> Mapping.proc_of b task.tid then
        Buffer.add_string buf
          (Printf.sprintf "task %s: %s -> %s\n" task.tname
             (Kinds.proc_kind_to_string (Mapping.proc_of a task.tid))
             (Kinds.proc_kind_to_string (Mapping.proc_of b task.tid)));
      if Mapping.distribute_of a task.tid <> Mapping.distribute_of b task.tid then
        Buffer.add_string buf
          (Printf.sprintf "task %s: distribute %b -> %b\n" task.tname
             (Mapping.distribute_of a task.tid)
             (Mapping.distribute_of b task.tid));
      List.iter
        (fun (c : Graph.collection) ->
          if Mapping.mem_of a c.cid <> Mapping.mem_of b c.cid then
            Buffer.add_string buf
              (Printf.sprintf "arg %s: %s -> %s\n" c.cname
                 (Kinds.mem_kind_to_string (Mapping.mem_of a c.cid))
                 (Kinds.mem_kind_to_string (Mapping.mem_of b c.cid))))
        task.args)
    (Graph.topological_order g);
  Buffer.contents buf

let placement_summary g m =
  let count_proc k =
    Array.to_list g.Graph.tasks
    |> List.filter (fun (t : Graph.task) -> Kinds.equal_proc (Mapping.proc_of m t.tid) k)
    |> List.length
  in
  let count_mem k =
    Graph.collections g
    |> List.filter (fun (c : Graph.collection) ->
           Kinds.equal_mem (Mapping.mem_of m c.cid) k)
    |> List.length
  in
  Printf.sprintf "tasks: %d CPU / %d GPU; args: %d SYS / %d ZC / %d FB"
    (count_proc Kinds.Cpu) (count_proc Kinds.Gpu) (count_mem Kinds.System)
    (count_mem Kinds.Zero_copy) (count_mem Kinds.Frame_buffer)
