lib/core/report.ml: Array Buffer Float Graph Kinds List Mapping Printf String
