lib/core/automap_api.mli: App Driver Graph Machine Mapping
