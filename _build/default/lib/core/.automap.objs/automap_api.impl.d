lib/core/automap_api.ml: App Driver Evaluator Graph List Machine Mapping Stats
