lib/core/report.mli: Graph Mapping
