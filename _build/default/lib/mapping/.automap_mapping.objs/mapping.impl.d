lib/mapping/mapping.ml: Array Buffer Format Graph Kinds List Machine Printf Result String
