lib/mapping/codec.mli: Graph Mapping
