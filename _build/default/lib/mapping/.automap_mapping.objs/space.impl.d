lib/mapping/space.ml: Array Graph Kinds List Machine Mapping Rng
