lib/mapping/mapping.mli: Format Graph Kinds Machine
