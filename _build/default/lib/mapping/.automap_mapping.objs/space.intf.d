lib/mapping/space.mli: Graph Kinds Machine Mapping Rng
