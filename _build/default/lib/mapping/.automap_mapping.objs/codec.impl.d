lib/mapping/codec.ml: Buffer Graph Kinds List Mapping Option Printf String
