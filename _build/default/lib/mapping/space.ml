type dim = Distribution of int | Strategy of int | Processor of int | Memory of int

type t = { g : Graph.t; m : Machine.t; ext : bool }

let make ?(extended = false) g m = { g; m; ext = extended }
let graph t = t.g
let machine t = t.m
let extended t = t.ext

let dims t =
  let task_dims =
    List.concat_map
      (fun (task : Graph.task) ->
        [ Distribution task.tid; Processor task.tid ]
        @ if t.ext then [ Strategy task.tid ] else [])
      (Array.to_list t.g.tasks)
  in
  let mem_dims =
    List.map (fun (c : Graph.collection) -> Memory c.cid) (Graph.collections t.g)
  in
  task_dims @ mem_dims

let proc_choices t tid =
  let task = Graph.task t.g tid in
  List.filter
    (fun k -> Machine.procs_of_kind_per_node t.m k > 0)
    task.variants

let mem_choices _t k = Kinds.accessible_mem_kinds k

let distribution_choices t =
  (true, Mapping.Blocked) :: (false, Mapping.Blocked)
  :: (if t.ext then [ (true, Mapping.Cyclic) ] else [])

let log2_size t =
  let log2 x = log x /. log 2.0 in
  Array.fold_left
    (fun acc (task : Graph.task) ->
      let procs = proc_choices t task.tid in
      (* Number of (proc, mems...) combinations for this task: sum over
         candidate kinds of the product of its arguments' memory
         domains, times 2 for the distribution bit. *)
      let per_kind k =
        let mems = float_of_int (List.length (mem_choices t k)) in
        List.fold_left (fun p _ -> p *. mems) 1.0 task.args
      in
      let combos = List.fold_left (fun s k -> s +. per_kind k) 0.0 procs in
      let dist = float_of_int (List.length (distribution_choices t)) in
      acc +. log2 (dist *. combos))
    0.0 t.g.tasks

let random_strategy t rng =
  if t.ext && Rng.bool rng then Mapping.Cyclic else Mapping.Blocked

let random_mapping t rng =
  let proc_for = Array.make (Graph.n_tasks t.g) Kinds.Cpu in
  Array.iter
    (fun (task : Graph.task) ->
      proc_for.(task.tid) <- Rng.choose_list rng (proc_choices t task.tid))
    t.g.tasks;
  Mapping.make t.g
    ~strategy:(fun _ -> random_strategy t rng)
    ~distribute:(fun _ -> Rng.bool rng)
    ~proc:(fun task -> proc_for.(task.tid))
    ~mem:(fun c -> Rng.choose_list rng (mem_choices t proc_for.(c.owner)))

let random_unconstrained t rng =
  Mapping.make t.g
    ~strategy:(fun _ -> random_strategy t rng)
    ~distribute:(fun _ -> Rng.bool rng)
    ~proc:(fun _ -> Rng.choose_list rng Kinds.all_proc_kinds)
    ~mem:(fun _ -> Rng.choose_list rng Kinds.all_mem_kinds)
