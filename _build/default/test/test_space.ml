let test_dims () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let s = Space.make g (Fixtures.default_machine ()) in
  let dims = Space.dims s in
  (* 2 tasks x (distribution + processor) + 3 memory dims *)
  Alcotest.(check int) "dim count" 7 (List.length dims);
  let n_mem = List.length (List.filter (function Space.Memory _ -> true | _ -> false) dims) in
  Alcotest.(check int) "memory dims" 3 n_mem

let test_proc_choices_respect_variants () =
  let g, t, _ = Fixtures.gpu_only () in
  let s = Space.make g (Fixtures.default_machine ()) in
  Alcotest.(check bool) "gpu only" true (Space.proc_choices s t = [ Kinds.Gpu ])

let test_proc_choices_respect_machine () =
  let g, t, _ = Fixtures.gpu_only () in
  let s = Space.make g (Presets.cpu_only ~nodes:1) in
  Alcotest.(check int) "no choices on cpu-only machine" 0
    (List.length (Space.proc_choices s t))

let test_mem_choices () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let s = Space.make g (Fixtures.default_machine ()) in
  Alcotest.(check int) "gpu mems" 2 (List.length (Space.mem_choices s Kinds.Gpu));
  Alcotest.(check int) "cpu mems" 2 (List.length (Space.mem_choices s Kinds.Cpu))

let test_log2_size_pipeline () =
  (* pipeline: task produce (1 arg), task consume (2 args), both kinds:
     per task = 2 * (2^args + 2^args) -> log2 total =
       log2(2*(2+2)) + log2(2*(4+4)) = 3 + 4 = 7 bits *)
  let g, _, _, _, _ = Fixtures.pipeline () in
  let s = Space.make g (Fixtures.default_machine ()) in
  Alcotest.(check (float 1e-6)) "log2 size" 7.0 (Space.log2_size s)

let test_log2_size_figure5_scale () =
  (* Figure 5 reports Pennant's space as ~2^128; ours should be within
     the same order of magnitude of bits. *)
  let g = Pennant.graph ~nodes:1 ~input:"320x90" in
  let s = Space.make g (Presets.shepard ~nodes:1) in
  let bits = Space.log2_size s in
  Alcotest.(check bool) "pennant bits in [100, 180]" true (bits >= 100.0 && bits <= 180.0)

let test_random_mapping_deterministic () =
  let g, _, _ = Fixtures.shared_halo () in
  let s = Space.make g (Fixtures.default_machine ()) in
  let a = Space.random_mapping s (Rng.create 5) in
  let b = Space.random_mapping s (Rng.create 5) in
  Alcotest.(check bool) "same seed same mapping" true (Mapping.equal a b)

let suite =
  [
    Alcotest.test_case "dims" `Quick test_dims;
    Alcotest.test_case "proc choices variants" `Quick test_proc_choices_respect_variants;
    Alcotest.test_case "proc choices machine" `Quick test_proc_choices_respect_machine;
    Alcotest.test_case "mem choices" `Quick test_mem_choices;
    Alcotest.test_case "log2 size pipeline" `Quick test_log2_size_pipeline;
    Alcotest.test_case "log2 size fig5 scale" `Quick test_log2_size_figure5_scale;
    Alcotest.test_case "random deterministic" `Quick test_random_mapping_deterministic;
  ]
