let machine () = Fixtures.default_machine ()

let make_ev ?(runs = 3) g = Evaluator.create ~runs ~noise_sigma:0.005 ~seed:3 (machine ()) g

(* The shared_halo fixture on the testbed: small data, so the CPU
   mapping usually wins over the GPU default — all algorithms should
   find something at least as good as the default. *)

let default_perf g ev = Evaluator.evaluate ev (Mapping.default_start g (machine ()))

let test_cd_improves_or_equals () =
  let g, _, _ = Fixtures.shared_halo () in
  let ev = make_ev g in
  let p0 = default_perf g ev in
  let _, p = Cd.search ev in
  Alcotest.(check bool) "cd never worse than start" true (p <= p0)

let test_cd_result_valid () =
  let g, _, _ = Fixtures.shared_halo () in
  let ev = make_ev g in
  let m, _ = Cd.search ev in
  Alcotest.(check bool) "valid mapping" true (Mapping.is_valid g (machine ()) m)

let test_ccd_improves_or_equals_cd () =
  (* noise-free so the comparison is exact *)
  let g, _, _ = Fixtures.shared_halo () in
  let noise_free g = Evaluator.create ~runs:1 ~noise_sigma:0.0 ~seed:3 (machine ()) g in
  let _, p_cd = Cd.search (noise_free g) in
  let _, p_ccd = Ccd.search ~rotations:5 (noise_free g) in
  Alcotest.(check bool)
    (Printf.sprintf "ccd %.4g within cd %.4g" p_ccd p_cd)
    true
    (p_ccd <= p_cd +. 1e-12)

let test_ccd_rotations_validation () =
  let g, _, _ = Fixtures.shared_halo () in
  let ev = make_ev g in
  Alcotest.check_raises "rotations >= 2"
    (Invalid_argument "Ccd.search: rotations must be at least 2") (fun () ->
      ignore (Ccd.search ~rotations:1 ev))

let test_ccd_more_suggestions_than_cd () =
  let g, _, _ = Fixtures.shared_halo () in
  let ev_cd = make_ev g in
  ignore (Cd.search ev_cd);
  let ev_ccd = make_ev g in
  ignore (Ccd.search ~rotations:5 ev_ccd);
  Alcotest.(check bool) "ccd explores more" true
    (Evaluator.suggested ev_ccd > Evaluator.suggested ev_cd)

let test_budget_cuts_search () =
  let g, _, _ = Fixtures.shared_halo () in
  let ev_full = make_ev g in
  ignore (Ccd.search ev_full);
  let full = Evaluator.suggested ev_full in
  let ev_tiny = make_ev g in
  ignore (Ccd.search ~budget:1e-9 ev_tiny);
  Alcotest.(check bool) "tiny budget stops early" true
    (Evaluator.suggested ev_tiny < full)

let test_ensemble_runs_and_counts () =
  let g, _, _ = Fixtures.shared_halo () in
  let ev = make_ev g in
  let config = { Ensemble.default_config with max_suggestions = 300; seed = 5 } in
  let m, p = Ensemble.search ~config ev in
  Alcotest.(check bool) "valid result" true (Mapping.is_valid g (machine ()) m);
  Alcotest.(check bool) "finite perf" true (Float.is_finite p);
  Alcotest.(check bool) "many suggestions" true (Evaluator.suggested ev >= 300);
  Alcotest.(check bool) "constraint-unaware: some invalid" true
    (Evaluator.invalid_count ev > 0);
  Alcotest.(check bool) "evaluated far fewer than suggested" true
    (Evaluator.evaluated ev < Evaluator.suggested ev)

let test_ensemble_useful_fraction_low () =
  (* the per-suggestion machinery overhead makes the ensemble's useful
     search-time fraction much lower than CCD's (§5.3) *)
  let g, _, _ = Fixtures.shared_halo () in
  let ev_ot = make_ev g in
  let config = { Ensemble.default_config with max_suggestions = 200; seed = 5 } in
  ignore (Ensemble.search ~config ev_ot);
  let frac_ot = Evaluator.eval_time ev_ot /. Evaluator.virtual_time ev_ot in
  let ev_ccd = make_ev g in
  ignore (Ccd.search ev_ccd);
  let frac_ccd = Evaluator.eval_time ev_ccd /. Evaluator.virtual_time ev_ccd in
  Alcotest.(check bool)
    (Printf.sprintf "ot %.2f < ccd %.2f" frac_ot frac_ccd)
    true (frac_ot < frac_ccd)

let test_random_search () =
  let g, _, _ = Fixtures.shared_halo () in
  let ev = make_ev g in
  let p0 = default_perf g ev in
  let m, p = Random_search.search ~max_evals:50 ev in
  Alcotest.(check bool) "valid" true (Mapping.is_valid g (machine ()) m);
  Alcotest.(check bool) "never worse than start" true (p <= p0)

let test_annealing () =
  let g, _, _ = Fixtures.shared_halo () in
  let ev = make_ev g in
  let p0 = default_perf g ev in
  let m, p = Annealing.search ~max_evals:100 ev in
  Alcotest.(check bool) "valid" true (Mapping.is_valid g (machine ()) m);
  Alcotest.(check bool) "never worse than start" true (p <= p0)

let test_search_deterministic () =
  let g, _, _ = Fixtures.shared_halo () in
  let run () =
    let ev = make_ev g in
    let m, p = Ccd.search ev in
    (Mapping.canonical_key m, p)
  in
  let k1, p1 = run () and k2, p2 = run () in
  Alcotest.(check string) "same mapping" k1 k2;
  Alcotest.(check (float 0.0)) "same perf" p1 p2

let test_driver_protocol () =
  let g, _, _ = Fixtures.shared_halo () in
  let r =
    Driver.run ~runs:3 ~final_top:3 ~final_runs:5 ~noise_sigma:0.005 ~seed:2
      (Driver.Ccd { rotations = 3 })
      (machine ()) g
  in
  Alcotest.(check bool) "positive perf" true (r.Driver.perf > 0.0);
  Alcotest.(check int) "final stats runs" 5 r.Driver.final_stats.Stats.n;
  Alcotest.(check bool) "trace non-empty" true (List.length r.Driver.trace > 0);
  Alcotest.(check bool) "suggested >= evaluated" true (r.Driver.suggested >= r.Driver.evaluated);
  Alcotest.(check bool) "useful fraction in (0,1]" true
    (r.Driver.eval_time_fraction > 0.0 && r.Driver.eval_time_fraction <= 1.0);
  Alcotest.(check bool) "valid best" true (Mapping.is_valid g (machine ()) r.Driver.best)

let test_driver_algo_names () =
  Alcotest.(check string) "cd" "CD" (Driver.algo_name Driver.Cd);
  Alcotest.(check string) "ccd" "CCD(5)" (Driver.algo_name (Driver.Ccd { rotations = 5 }));
  Alcotest.(check string) "ot" "Ensemble(OT)" (Driver.algo_name Driver.Ensemble_tuner)

(* The motivating scenario of §4.2: two group tasks share two large
   collections; the fastest mapping puts both shared collections in
   Zero-Copy, but no sequence of strictly-improving single-collection
   moves reaches it from the all-FB start.  CCD's coordinated move
   finds it; CD should stay stuck at the default. *)
let coupled_collections_graph () =
  let b = Graph.Builder.create ~iterations:4 ~name:"coupled" () in
  let mb = 1e6 in
  let t1 =
    Graph.Builder.add_task b ~name:"phase1" ~group_size:2
      ~variants:[ Kinds.Cpu; Kinds.Gpu ] ~flops:1e5 ()
  in
  let a1 = Graph.Builder.add_arg b ~task:t1 ~name:"phase1.sa" ~bytes:(4.0 *. mb) ~mode:Mode.Read_write in
  let b1 = Graph.Builder.add_arg b ~task:t1 ~name:"phase1.sb" ~bytes:(4.0 *. mb) ~mode:Mode.Read_write in
  let t2 =
    Graph.Builder.add_task b ~name:"phase2" ~group_size:2
      ~variants:[ Kinds.Cpu ] ~flops:1e5 ()
  in
  let a2 = Graph.Builder.add_arg b ~task:t2 ~name:"phase2.sa" ~bytes:(4.0 *. mb) ~mode:Mode.Read_write in
  let b2 = Graph.Builder.add_arg b ~task:t2 ~name:"phase2.sb" ~bytes:(4.0 *. mb) ~mode:Mode.Read_write in
  Graph.Builder.add_dep b ~src:a1 ~dst:a2;
  Graph.Builder.add_dep b ~src:b1 ~dst:b2;
  Graph.Builder.add_dep b ~src:a2 ~dst:a1 ~carried:true;
  Graph.Builder.add_dep b ~src:b2 ~dst:b1 ~carried:true;
  Graph.Builder.add_overlap b a1 a2 ~bytes:(4.0 *. mb);
  Graph.Builder.add_overlap b b1 b2 ~bytes:(4.0 *. mb);
  Graph.Builder.add_overlap b a1 b1 ~bytes:(2.0 *. mb);
  Graph.Builder.build b

let test_ccd_coordinated_move_beats_cd () =
  let g = coupled_collections_graph () in
  let machine = Presets.testbed ~nodes:1 in
  let ev_cd = Evaluator.create ~runs:3 ~noise_sigma:0.0 ~seed:3 machine g in
  let _, p_cd = Cd.search ev_cd in
  let ev_ccd = Evaluator.create ~runs:3 ~noise_sigma:0.0 ~seed:3 machine g in
  let m_ccd, p_ccd = Ccd.search ~rotations:5 ev_ccd in
  Alcotest.(check bool)
    (Printf.sprintf "ccd %.3g <= cd %.3g" p_ccd p_cd)
    true (p_ccd <= p_cd);
  Alcotest.(check bool) "valid" true (Mapping.is_valid g machine m_ccd)

let suite =
  [
    Alcotest.test_case "cd improves" `Quick test_cd_improves_or_equals;
    Alcotest.test_case "cd valid" `Quick test_cd_result_valid;
    Alcotest.test_case "ccd >= cd" `Quick test_ccd_improves_or_equals_cd;
    Alcotest.test_case "ccd rotations" `Quick test_ccd_rotations_validation;
    Alcotest.test_case "ccd explores more" `Quick test_ccd_more_suggestions_than_cd;
    Alcotest.test_case "budget" `Quick test_budget_cuts_search;
    Alcotest.test_case "ensemble counts" `Quick test_ensemble_runs_and_counts;
    Alcotest.test_case "ensemble useful fraction" `Quick test_ensemble_useful_fraction_low;
    Alcotest.test_case "random search" `Quick test_random_search;
    Alcotest.test_case "annealing" `Quick test_annealing;
    Alcotest.test_case "deterministic" `Quick test_search_deterministic;
    Alcotest.test_case "driver protocol" `Quick test_driver_protocol;
    Alcotest.test_case "driver names" `Quick test_driver_algo_names;
    Alcotest.test_case "ccd coordinated move" `Quick test_ccd_coordinated_move_beats_cd;
  ]
