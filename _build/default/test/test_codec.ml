let test_round_trip_default () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (Fixtures.default_machine ()) in
  let m' = Codec.round_trip_exn g m in
  Alcotest.(check bool) "round trip" true (Mapping.equal m m')

let test_round_trip_modified () =
  let g, t1, _, out, _ = Fixtures.pipeline () in
  let m =
    Mapping.default_start g (Fixtures.default_machine ())
    |> (fun m -> Mapping.set_proc m t1 Kinds.Cpu)
    |> (fun m -> Mapping.set_mem m out Kinds.Zero_copy)
    |> fun m -> Mapping.set_distribute m t1 false
  in
  Alcotest.(check bool) "round trip" true (Mapping.equal m (Codec.round_trip_exn g m))

let test_format_contents () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (Fixtures.default_machine ()) in
  let s = Codec.to_string g m in
  Alcotest.(check bool) "task line" true (Str_helpers.contains s "task produce distribute=true proc=GPU");
  Alcotest.(check bool) "arg line" true (Str_helpers.contains s "arg produce produce.data mem=FB")

let test_parse_errors () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let check_error input expected_fragment =
    match Codec.of_string g input with
    | Ok _ -> Alcotest.fail "expected parse error"
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "error %S mentions %S" e expected_fragment)
          true
          (Str_helpers.contains e expected_fragment)
  in
  check_error "garbage line" "unrecognized";
  check_error "task produce distribute=maybe proc=GPU" "bad boolean";
  check_error "task produce distribute=true proc=TPU" "bad processor";
  check_error "arg produce produce.data mem=HBM" "bad memory";
  (* missing assignments *)
  check_error "task produce distribute=true proc=GPU" "missing"

let test_comments_and_blanks () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (Fixtures.default_machine ()) in
  let s = "# a comment\n\n" ^ Codec.to_string g m ^ "\n# trailing\n" in
  match Codec.of_string g s with
  | Ok m' -> Alcotest.(check bool) "parsed" true (Mapping.equal m m')
  | Error e -> Alcotest.fail e

let prop_round_trip_random =
  QCheck.Test.make ~name:"codec round-trips random valid mappings" QCheck.(int_bound 100_000)
    (fun seed ->
      let g, _, _ = Fixtures.shared_halo () in
      let s = Space.make g (Fixtures.default_machine ()) in
      let m = Space.random_mapping s (Rng.create seed) in
      Mapping.equal m (Codec.round_trip_exn g m))

let suite =
  [
    Alcotest.test_case "round trip default" `Quick test_round_trip_default;
    Alcotest.test_case "round trip modified" `Quick test_round_trip_modified;
    Alcotest.test_case "format contents" `Quick test_format_contents;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    QCheck_alcotest.to_alcotest prop_round_trip_random;
  ]
