let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b);
  (* advancing the copy does not affect the original *)
  let before = Rng.copy a in
  ignore (Rng.bits64 b);
  Alcotest.(check int64) "original unaffected" (Rng.bits64 before) (Rng.bits64 a)

let test_split_diverges () =
  let a = Rng.create 3 in
  let child = Rng.split a in
  let x = Rng.bits64 a and y = Rng.bits64 child in
  Alcotest.(check bool) "parent and child streams differ" true (x <> y)

let test_int_bounds () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_int_invalid () =
  let r = Rng.create 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_float_bounds () =
  let r = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_float_mean () =
  let r = Rng.create 13 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float r 1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "uniform mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_gaussian_moments () =
  let r = Rng.create 17 in
  let n = 20_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.gaussian r in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (abs_float mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (abs_float (var -. 1.0) < 0.08)

let test_lognormal_median () =
  let r = Rng.create 19 in
  let n = 10_001 in
  let vs = List.init n (fun _ -> Rng.lognormal r ~sigma:0.1) in
  let med = Stats.median vs in
  Alcotest.(check bool) "median near 1.0" true (abs_float (med -. 1.0) < 0.02);
  List.iter (fun v -> Alcotest.(check bool) "positive" true (v > 0.0)) vs

let test_choose () =
  let r = Rng.create 23 in
  let a = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Rng.choose r a) a)
  done;
  Alcotest.check_raises "empty array" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose r [||]))

let test_shuffle_permutation () =
  let r = Rng.create 29 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let prop_int_uniformish =
  QCheck.Test.make ~name:"rng int covers full range"
    QCheck.(int_bound 1000)
    (fun seed ->
      let r = Rng.create seed in
      let seen = Array.make 4 false in
      for _ = 1 to 200 do
        seen.(Rng.int r 4) <- true
      done;
      Array.for_all Fun.id seen)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "copy" `Quick test_copy_independent;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int invalid" `Quick test_int_invalid;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "lognormal median" `Quick test_lognormal_median;
    Alcotest.test_case "choose" `Quick test_choose;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    QCheck_alcotest.to_alcotest prop_int_uniformish;
  ]
