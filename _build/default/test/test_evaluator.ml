let machine () = Fixtures.default_machine ()

let make_ev ?(runs = 3) ?(noise_sigma = 0.01) ?penalty g =
  Evaluator.create ~runs ~noise_sigma ?penalty ~seed:1 (machine ()) g

let test_evaluate_returns_mean_positive () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let ev = make_ev g in
  let m = Mapping.default_start g (machine ()) in
  let perf = Evaluator.evaluate ev m in
  Alcotest.(check bool) "positive" true (perf > 0.0 && Float.is_finite perf);
  Alcotest.(check int) "one evaluation" 1 (Evaluator.evaluated ev);
  Alcotest.(check int) "one suggestion" 1 (Evaluator.suggested ev)

let test_cache_dedup () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let ev = make_ev g in
  let m = Mapping.default_start g (machine ()) in
  let p1 = Evaluator.evaluate ev m in
  let vt = Evaluator.virtual_time ev in
  let p2 = Evaluator.evaluate ev m in
  Alcotest.(check (float 0.0)) "cached value identical" p1 p2;
  Alcotest.(check int) "still one evaluation" 1 (Evaluator.evaluated ev);
  Alcotest.(check int) "two suggestions" 2 (Evaluator.suggested ev);
  Alcotest.(check int) "one cache hit" 1 (Evaluator.cache_hits ev);
  Alcotest.(check (float 0.0)) "no extra virtual time" vt (Evaluator.virtual_time ev)

let test_invalid_penalized_without_execution () =
  let g, t, _ = Fixtures.gpu_only () in
  let ev = make_ev ~penalty:1e9 g in
  let bad = Mapping.set_proc (Mapping.default_start g (machine ())) t Kinds.Cpu in
  let p = Evaluator.evaluate ev bad in
  Alcotest.(check (float 0.0)) "penalty returned" 1e9 p;
  Alcotest.(check int) "not evaluated" 0 (Evaluator.evaluated ev);
  Alcotest.(check int) "counted invalid" 1 (Evaluator.invalid_count ev)

let test_oom_penalized () =
  let g, _, _ = Fixtures.oversized () in
  let ev = make_ev ~penalty:infinity g in
  let m = Mapping.default_start g (machine ()) in
  let p = Evaluator.evaluate ev m in
  Alcotest.(check bool) "infinite penalty" true (p = infinity);
  Alcotest.(check int) "counted oom" 1 (Evaluator.oom_count ev);
  Alcotest.(check int) "not evaluated" 0 (Evaluator.evaluated ev)

let test_best_and_trace () =
  let g, _, _, out, _ = Fixtures.pipeline () in
  let ev = make_ev g in
  let good = Mapping.default_start g (machine ()) in
  let worse = Mapping.set_mem good out Kinds.Zero_copy in
  let p_worse = Evaluator.evaluate ev worse in
  let p_good = Evaluator.evaluate ev good in
  Alcotest.(check bool) "good is better" true (p_good < p_worse);
  (match Evaluator.best ev with
  | Some (m, p) ->
      Alcotest.(check bool) "best mapping" true (Mapping.equal m good);
      Alcotest.(check (float 0.0)) "best perf" p_good p
  | None -> Alcotest.fail "no best");
  Alcotest.(check int) "trace has two improvements" 2 (List.length (Evaluator.trace ev));
  let times = List.map fst (Evaluator.trace ev) in
  Alcotest.(check bool) "trace times non-decreasing" true
    (List.sort compare times = times)

let test_virtual_time_accumulates () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let ev = make_ev g in
  let m = Mapping.default_start g (machine ()) in
  ignore (Evaluator.evaluate ev m);
  let vt = Evaluator.virtual_time ev in
  Alcotest.(check bool) "time advanced" true (vt > 0.0);
  Evaluator.note_suggestion_overhead ev 1.5;
  Alcotest.(check (float 1e-9)) "overhead charged" (vt +. 1.5) (Evaluator.virtual_time ev);
  Alcotest.(check bool) "eval fraction < 1 after overhead" true
    (Evaluator.eval_time ev < Evaluator.virtual_time ev)

let test_measure_outside_bookkeeping () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let ev = make_ev g in
  let m = Mapping.default_start g (machine ()) in
  let runs = Evaluator.measure ev ~runs:5 m in
  Alcotest.(check int) "five runs" 5 (List.length runs);
  Alcotest.(check int) "no suggestions recorded" 0 (Evaluator.suggested ev)

let test_profile_for () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let ev = make_ev g in
  let m = Mapping.default_start g (machine ()) in
  let p = Evaluator.profile_for ev m in
  Alcotest.(check bool) "positive task time" true (Profile.time p 0 > 0.0)

let test_profile_for_oom_is_uniform () =
  let g, _, _ = Fixtures.oversized () in
  let ev = make_ev g in
  let m = Mapping.default_start g (machine ()) in
  let p = Evaluator.profile_for ev m in
  Alcotest.(check (float 0.0)) "uniform fallback" 1.0 (Profile.time p 0)

let test_determinism_across_instances () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  let p1 = Evaluator.evaluate (make_ev g) m in
  let p2 = Evaluator.evaluate (make_ev g) m in
  Alcotest.(check (float 0.0)) "same seed, same measurement" p1 p2

let suite =
  [
    Alcotest.test_case "evaluate positive" `Quick test_evaluate_returns_mean_positive;
    Alcotest.test_case "cache dedup" `Quick test_cache_dedup;
    Alcotest.test_case "invalid penalized" `Quick test_invalid_penalized_without_execution;
    Alcotest.test_case "oom penalized" `Quick test_oom_penalized;
    Alcotest.test_case "best and trace" `Quick test_best_and_trace;
    Alcotest.test_case "virtual time" `Quick test_virtual_time_accumulates;
    Alcotest.test_case "measure" `Quick test_measure_outside_bookkeeping;
    Alcotest.test_case "profile_for" `Quick test_profile_for;
    Alcotest.test_case "profile_for oom" `Quick test_profile_for_oom_is_uniform;
    Alcotest.test_case "cross-instance determinism" `Quick test_determinism_across_instances;
  ]
