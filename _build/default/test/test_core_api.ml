let test_tune_end_to_end () =
  let machine = Presets.shepard ~nodes:1 in
  let t =
    Automap_api.tune ~app:App.circuit ~machine ~input:"n50w200" ~runs:3 ~final_runs:5
      ~seed:1 ()
  in
  Alcotest.(check int) "three comparisons" 3 (List.length t.Automap_api.comparisons);
  let find l = List.find (fun c -> c.Automap_api.label = l) t.Automap_api.comparisons in
  let auto = find "automap" and dflt = find "default" in
  Alcotest.(check bool) "default speedup 1.0" true
    (abs_float (dflt.Automap_api.speedup_vs_default -. 1.0) < 1e-9);
  Alcotest.(check bool) "automap at least as fast as default" true
    (auto.Automap_api.speedup_vs_default >= 0.95);
  Alcotest.(check bool) "mapping valid" true
    (Mapping.is_valid t.Automap_api.graph machine auto.Automap_api.mapping)

let test_measure_mapping () =
  let machine = Presets.testbed ~nodes:1 in
  let g, _, _ = Fixtures.shared_halo () in
  let m = Mapping.default_start g machine in
  let perf = Automap_api.measure_mapping ~runs:3 machine g m in
  Alcotest.(check bool) "positive" true (perf > 0.0)

let test_speedup () =
  Alcotest.(check (float 1e-9)) "2x" 2.0 (Automap_api.speedup ~baseline:4.0 2.0)

let test_report_mapping () =
  let g, _, _ = Fixtures.shared_halo () in
  let machine = Fixtures.default_machine () in
  let m = Mapping.default_start g machine in
  let s = Report.mapping g m in
  Alcotest.(check bool) "mentions tasks" true (Str_helpers.contains s "writer");
  Alcotest.(check bool) "mentions kinds" true (Str_helpers.contains s "GPU");
  Alcotest.(check bool) "has size bars" true (Str_helpers.contains s "#")

let test_report_diff () =
  let g, (t1, _, _), (w, _, _, _) = Fixtures.shared_halo () in
  let machine = Fixtures.default_machine () in
  let a = Mapping.default_start g machine in
  Alcotest.(check string) "no diff with itself" "" (Report.mapping_diff g a a);
  let b = Mapping.set_mem (Mapping.set_proc a t1 Kinds.Cpu) w Kinds.Zero_copy in
  let d = Report.mapping_diff g a b in
  Alcotest.(check bool) "task diff" true (Str_helpers.contains d "task writer: GPU -> CPU");
  Alcotest.(check bool) "arg diff" true (Str_helpers.contains d "FB -> ZC")

let test_placement_summary () =
  let g, _, _ = Fixtures.shared_halo () in
  let machine = Fixtures.default_machine () in
  let m = Mapping.default_start g machine in
  let s = Report.placement_summary g m in
  Alcotest.(check bool) "counts GPUs" true (Str_helpers.contains s "3 GPU");
  Alcotest.(check bool) "counts FB args" true (Str_helpers.contains s "4 FB")

let suite =
  [
    Alcotest.test_case "tune end to end" `Quick test_tune_end_to_end;
    Alcotest.test_case "measure mapping" `Quick test_measure_mapping;
    Alcotest.test_case "speedup" `Quick test_speedup;
    Alcotest.test_case "report mapping" `Quick test_report_mapping;
    Alcotest.test_case "report diff" `Quick test_report_diff;
    Alcotest.test_case "placement summary" `Quick test_placement_summary;
  ]
