(* Tiny substring-search helper shared by the test modules (the repo
   deliberately avoids depending on the Str library). *)

let find haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i =
    if i + nl > hl then -1
    else if String.sub haystack i nl = needle then i
    else go (i + 1)
  in
  go 0

let contains haystack needle = find haystack needle >= 0
