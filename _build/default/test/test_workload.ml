let simple_spec () =
  let arrays =
    [
      Workload.array_decl ~name:"state" ~elems:1e6 ~halo_frac:0.1 ();
      Workload.array_decl ~name:"flux" ~elems:1e6 ~comps:2 ();
      Workload.array_decl ~name:"init_data" ~elems:1e3 ();
    ]
  in
  let tasks =
    [
      Workload.task_decl ~name:"compute_flux" ~work_elems:1e6 ~flops_per_elem:10.0
        ~group_size:4
        ~accesses:[ Workload.read ~ghosted:true "state"; Workload.write "flux";
                    Workload.read "init_data" ]
        ();
      Workload.task_decl ~name:"update" ~work_elems:1e6 ~flops_per_elem:5.0 ~group_size:4
        ~accesses:[ Workload.read "flux"; Workload.read_write "state" ] ();
    ]
  in
  Workload.build ~name:"simple" ~iterations:2 ~arrays ~tasks

let test_counts () =
  let g = simple_spec () in
  Alcotest.(check int) "tasks" 2 (Graph.n_tasks g);
  Alcotest.(check int) "args" 5 (Graph.n_collections g)

let test_arg_sizes_partitioned () =
  let g = simple_spec () in
  let flux_arg =
    List.find (fun (c : Graph.collection) -> c.Graph.cname = "compute_flux.flux")
      (Graph.collections g)
  in
  (* 1e6 elems x 2 comps x 8 B / 4 shards *)
  Alcotest.(check (float 1.0)) "per-shard bytes" 4e6 flux_arg.Graph.bytes

let find_edge g src dst =
  List.find_opt
    (fun (e : Graph.edge) ->
      let name cid = (Graph.collection g cid).Graph.cname in
      name e.Graph.src = src && name e.Graph.dst = dst)
    g.Graph.edges

let test_producer_consumer_edge () =
  let g = simple_spec () in
  match find_edge g "compute_flux.flux" "update.flux" with
  | Some e ->
      Alcotest.(check bool) "not carried" false e.Graph.carried;
      Alcotest.(check bool) "same-shard" true (e.Graph.pattern = Pattern.Same_shard)
  | None -> Alcotest.fail "missing flux edge"

let test_carried_edge_for_leading_read () =
  (* compute_flux reads state before update (the only writer) writes it:
     the dependence must be loop-carried from update *)
  let g = simple_spec () in
  match find_edge g "update.state" "compute_flux.state" with
  | Some e ->
      Alcotest.(check bool) "carried" true e.Graph.carried;
      (match e.Graph.pattern with
      | Pattern.Halo { frac } -> Alcotest.(check (float 1e-9)) "ghosted frac" 0.1 frac
      | Pattern.Same_shard -> Alcotest.fail "expected halo pattern")
  | None -> Alcotest.fail "missing carried state edge"

let test_input_array_has_no_edges () =
  let g = simple_spec () in
  let touching =
    List.filter
      (fun (e : Graph.edge) ->
        let name cid = (Graph.collection g cid).Graph.cname in
        Str_helpers.contains (name e.Graph.src) "init_data"
        || Str_helpers.contains (name e.Graph.dst) "init_data")
      g.Graph.edges
  in
  Alcotest.(check int) "no deps for never-written input" 0 (List.length touching)

let test_overlap_clique () =
  let g = simple_spec () in
  (* state: 2 accesses -> 1 edge; flux: 2 accesses -> 1 edge;
     init_data: 1 access -> 0 *)
  Alcotest.(check int) "overlap edges" 2 (List.length g.Graph.overlaps)

let test_rejects_unknown_array () =
  let arrays = [ Workload.array_decl ~name:"a" ~elems:10.0 () ] in
  let tasks =
    [ Workload.task_decl ~name:"t" ~work_elems:10.0 ~flops_per_elem:1.0 ~group_size:1
        ~accesses:[ Workload.read "nope" ] () ]
  in
  match Workload.build ~name:"bad" ~iterations:1 ~arrays ~tasks with
  | exception Graph.Invalid_graph m ->
      Alcotest.(check bool) "mentions name" true (Str_helpers.contains m "nope")
  | _ -> Alcotest.fail "expected failure"

let test_rejects_duplicate_array () =
  let arrays =
    [ Workload.array_decl ~name:"a" ~elems:10.0 (); Workload.array_decl ~name:"a" ~elems:10.0 () ]
  in
  let tasks =
    [ Workload.task_decl ~name:"t" ~work_elems:10.0 ~flops_per_elem:1.0 ~group_size:1
        ~accesses:[ Workload.read_write "a" ] () ]
  in
  match Workload.build ~name:"dup" ~iterations:1 ~arrays ~tasks with
  | exception Graph.Invalid_graph _ -> ()
  | _ -> Alcotest.fail "expected failure"

let test_array_decl_validation () =
  (match Workload.array_decl ~name:"x" ~elems:0.0 () with
  | exception Graph.Invalid_graph _ -> ()
  | _ -> Alcotest.fail "elems 0");
  match Workload.array_decl ~name:"x" ~elems:1.0 ~halo_frac:1.0 () with
  | exception Graph.Invalid_graph _ -> ()
  | _ -> Alcotest.fail "halo 1.0"

let test_bytes_per_elem () =
  Alcotest.(check (float 0.0)) "3 comps" 24.0 (Workload.bytes_per_elem 3)

let suite =
  [
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "arg sizes" `Quick test_arg_sizes_partitioned;
    Alcotest.test_case "producer-consumer edge" `Quick test_producer_consumer_edge;
    Alcotest.test_case "carried leading read" `Quick test_carried_edge_for_leading_read;
    Alcotest.test_case "input array" `Quick test_input_array_has_no_edges;
    Alcotest.test_case "overlap clique" `Quick test_overlap_clique;
    Alcotest.test_case "unknown array" `Quick test_rejects_unknown_array;
    Alcotest.test_case "duplicate array" `Quick test_rejects_duplicate_array;
    Alcotest.test_case "array validation" `Quick test_array_decl_validation;
    Alcotest.test_case "bytes per elem" `Quick test_bytes_per_elem;
  ]
