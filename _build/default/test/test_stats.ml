let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let test_mean () =
  Alcotest.(check bool) "mean" true (feq (Stats.mean [ 1.0; 2.0; 3.0 ]) 2.0);
  Alcotest.(check bool) "singleton" true (feq (Stats.mean [ 5.0 ]) 5.0)

let test_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty sample") (fun () ->
      ignore (Stats.mean []))

let test_variance () =
  (* sample variance of 2,4,4,4,5,5,7,9 is 32/7 *)
  let v = Stats.variance [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  Alcotest.(check bool) "variance" true (feq v (32.0 /. 7.0));
  Alcotest.(check bool) "singleton variance 0" true (feq (Stats.variance [ 3.0 ]) 0.0)

let test_median_odd_even () =
  Alcotest.(check bool) "odd" true (feq (Stats.median [ 3.0; 1.0; 2.0 ]) 2.0);
  Alcotest.(check bool) "even" true (feq (Stats.median [ 4.0; 1.0; 3.0; 2.0 ]) 2.5)

let test_min_max () =
  let lo, hi = Stats.min_max [ 3.0; -1.0; 7.0 ] in
  Alcotest.(check bool) "min" true (feq lo (-1.0));
  Alcotest.(check bool) "max" true (feq hi 7.0)

let test_summarize () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "n" 4 s.Stats.n;
  Alcotest.(check bool) "mean" true (feq s.Stats.mean 2.5);
  Alcotest.(check bool) "median" true (feq s.Stats.median 2.5);
  Alcotest.(check bool) "min" true (feq s.Stats.min 1.0);
  Alcotest.(check bool) "max" true (feq s.Stats.max 4.0)

let test_cv () =
  Alcotest.(check bool) "constant sample has cv 0" true
    (feq (Stats.coefficient_of_variation [ 2.0; 2.0; 2.0 ]) 0.0)

let test_geometric_mean () =
  Alcotest.(check bool) "gm of 1,4 is 2" true (feq (Stats.geometric_mean [ 1.0; 4.0 ]) 2.0);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geometric_mean: non-positive sample") (fun () ->
      ignore (Stats.geometric_mean [ 1.0; 0.0 ]))

let prop_mean_bounds =
  QCheck.Test.make ~name:"mean lies within min/max"
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range (-1e6) 1e6))
    (fun xs ->
      let m = Stats.mean xs in
      let lo, hi = Stats.min_max xs in
      m >= lo -. 1e-6 && m <= hi +. 1e-6)

let prop_variance_nonneg =
  QCheck.Test.make ~name:"variance is non-negative"
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range (-1e3) 1e3))
    (fun xs -> Stats.variance xs >= -1e-9)

let prop_median_invariant_under_shuffle =
  QCheck.Test.make ~name:"median is order-insensitive"
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range (-100.) 100.))
    (fun xs -> Stats.median xs = Stats.median (List.rev xs))

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "mean empty" `Quick test_mean_empty;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "median" `Quick test_median_odd_even;
    Alcotest.test_case "min_max" `Quick test_min_max;
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "cv" `Quick test_cv;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    QCheck_alcotest.to_alcotest prop_mean_bounds;
    QCheck_alcotest.to_alcotest prop_variance_nonneg;
    QCheck_alcotest.to_alcotest prop_median_invariant_under_shuffle;
  ]
