let count_substring s sub =
  let rec go i acc =
    match Str_helpers.find (String.sub s i (String.length s - i)) sub with
    | -1 -> acc
    | j -> go (i + j + String.length sub) (acc + 1)
  in
  go 0 0

let test_nice_ticks_cover_range () =
  let ticks = Svg_plot.nice_ticks 0.0 10.0 5 in
  Alcotest.(check bool) "non-empty" true (List.length ticks >= 3);
  List.iter
    (fun v -> Alcotest.(check bool) "within padded range" true (v >= -1.0 && v <= 12.0))
    ticks;
  let sorted = List.sort compare ticks in
  Alcotest.(check bool) "sorted" true (sorted = ticks)

let test_nice_ticks_round_values () =
  (* ticks over [0, 97] should land on multiples of a 1/2/5 step *)
  let ticks = Svg_plot.nice_ticks 0.0 97.0 5 in
  List.iter
    (fun v ->
      let frac = Float.rem v 10.0 in
      Alcotest.(check bool)
        (Printf.sprintf "tick %.3f is round" v)
        true
        (abs_float frac < 1e-9 || abs_float (frac -. 10.0) < 1e-9 || abs_float (frac -. 5.0) < 1e-9))
    ticks

let test_nice_ticks_degenerate () =
  Alcotest.(check (list (float 0.0))) "empty range" [ 5.0 ] (Svg_plot.nice_ticks 5.0 5.0 4);
  Alcotest.(check bool) "nan tolerated" true (List.length (Svg_plot.nice_ticks nan nan 4) >= 0)

let sample_series =
  [
    { Svg_plot.label = "a"; points = [ (0.0, 1.0); (1.0, 2.0); (2.0, 1.5) ] };
    { Svg_plot.label = "b"; points = [ (0.0, 0.5); (1.0, nan); (2.0, 2.5) ] };
  ]

let test_line_chart_structure () =
  let svg =
    Svg_plot.line_chart ~title:"t" ~xlabel:"x" ~ylabel:"y" sample_series
  in
  Alcotest.(check bool) "valid document" true (Str_helpers.contains svg "</svg>");
  Alcotest.(check int) "one polyline per series" 2 (count_substring svg "<polyline");
  (* 3 + 2 finite points produce markers *)
  Alcotest.(check bool) "markers present" true
    (count_substring svg "<circle" + count_substring svg "<rect" >= 5);
  Alcotest.(check bool) "legend labels" true
    (Str_helpers.contains svg ">a</text>" && Str_helpers.contains svg ">b</text>")

let test_line_chart_categories () =
  let svg =
    Svg_plot.line_chart ~x_categories:[ "one"; "two"; "three" ] ~title:"t" ~xlabel:"x"
      ~ylabel:"y" sample_series
  in
  List.iter
    (fun c -> Alcotest.(check bool) c true (Str_helpers.contains svg c))
    [ "one"; "two"; "three" ]

let test_escaping () =
  let svg =
    Svg_plot.line_chart ~title:"a < b & c" ~xlabel:"x" ~ylabel:"y"
      [ { Svg_plot.label = "s<1>"; points = [ (0.0, 1.0) ] } ]
  in
  Alcotest.(check bool) "escaped title" true (Str_helpers.contains svg "a &lt; b &amp; c");
  Alcotest.(check bool) "no raw angle in label" false (Str_helpers.contains svg "s<1>")

let test_bar_chart () =
  let svg =
    Svg_plot.bar_chart ~title:"bars" ~ylabel:"ms" ~categories:[ "c1"; "c2" ]
      [ ("g1", [ 1.0; 2.0 ]); ("g2", [ 3.0; nan ]) ]
  in
  Alcotest.(check bool) "valid" true (Str_helpers.contains svg "</svg>");
  (* 3 finite bars + background + frame + legend swatches (2) = rects >= 7 *)
  Alcotest.(check bool) "bars drawn" true (count_substring svg "<rect" >= 7);
  Alcotest.(check bool) "categories present" true
    (Str_helpers.contains svg "c1" && Str_helpers.contains svg "c2")

let test_empty_series () =
  let svg = Svg_plot.line_chart ~title:"e" ~xlabel:"x" ~ylabel:"y" [] in
  Alcotest.(check bool) "renders empty chart" true (Str_helpers.contains svg "</svg>")

let test_save () =
  let path = Filename.temp_file "automap_plot" ".svg" in
  Svg_plot.save path "<svg></svg>";
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "round trip" "<svg></svg>" contents

let suite =
  [
    Alcotest.test_case "ticks cover" `Quick test_nice_ticks_cover_range;
    Alcotest.test_case "ticks round" `Quick test_nice_ticks_round_values;
    Alcotest.test_case "ticks degenerate" `Quick test_nice_ticks_degenerate;
    Alcotest.test_case "line structure" `Quick test_line_chart_structure;
    Alcotest.test_case "line categories" `Quick test_line_chart_categories;
    Alcotest.test_case "escaping" `Quick test_escaping;
    Alcotest.test_case "bar chart" `Quick test_bar_chart;
    Alcotest.test_case "empty" `Quick test_empty_series;
    Alcotest.test_case "save" `Quick test_save;
  ]
