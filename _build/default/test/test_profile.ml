let test_uniform () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let p = Profile.uniform g in
  Alcotest.(check (float 0.0)) "uniform time" 1.0 (Profile.time p 0)

let test_of_times_accumulates () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let p = Profile.of_times g [ (0, 1.0); (0, 2.0); (1, 5.0) ] in
  Alcotest.(check (float 0.0)) "accumulated" 3.0 (Profile.time p 0);
  Alcotest.(check (float 0.0)) "other" 5.0 (Profile.time p 1)

let test_of_times_bad_tid () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  Alcotest.check_raises "bad tid" (Invalid_argument "Profile.of_times: bad tid")
    (fun () -> ignore (Profile.of_times g [ (99, 1.0) ]))

let test_order_by_runtime () =
  let g, (t1, t2, t3), _ = Fixtures.shared_halo () in
  let p = Profile.of_times g [ (t1, 1.0); (t2, 9.0); (t3, 4.0) ] in
  let order = List.map (fun (t : Graph.task) -> t.Graph.tid) (Profile.order_tasks_by_runtime g p) in
  Alcotest.(check (list int)) "longest first" [ t2; t3; t1 ] order

let test_order_ties_by_tid () =
  let g, (t1, t2, t3), _ = Fixtures.shared_halo () in
  let p = Profile.uniform g in
  let order = List.map (fun (t : Graph.task) -> t.Graph.tid) (Profile.order_tasks_by_runtime g p) in
  Alcotest.(check (list int)) "tid order on ties" [ t1; t2; t3 ] order

let test_order_args_by_size () =
  let g, _, (_, ra, rpriv, _) = Fixtures.shared_halo () in
  let task = Graph.task g (Graph.collection g ra).Graph.owner in
  let order = List.map (fun (c : Graph.collection) -> c.Graph.cid) (Profile.order_args_by_size task) in
  Alcotest.(check (list int)) "largest first" [ ra; rpriv ] order

let suite =
  [
    Alcotest.test_case "uniform" `Quick test_uniform;
    Alcotest.test_case "of_times accumulates" `Quick test_of_times_accumulates;
    Alcotest.test_case "of_times bad tid" `Quick test_of_times_bad_tid;
    Alcotest.test_case "order by runtime" `Quick test_order_by_runtime;
    Alcotest.test_case "ties by tid" `Quick test_order_ties_by_tid;
    Alcotest.test_case "args by size" `Quick test_order_args_by_size;
  ]
