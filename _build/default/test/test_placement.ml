let machine () = Fixtures.default_machine ()

let resolve_exn ?fallback g m mapping =
  match Placement.resolve ?fallback m g mapping with
  | Ok p -> p
  | Error e -> Alcotest.fail (Placement.error_to_string e)

let test_blocked_distribution () =
  (* 2 nodes, group of 2: shard 0 -> node 0, shard 1 -> node 1 *)
  let g, t1, _, _, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  let p = resolve_exn g (machine ()) m in
  Alcotest.(check int) "shards" 2 (Placement.shards p t1);
  Alcotest.(check int) "shard 0 on node 0" 0 (Placement.processor p ~tid:t1 ~shard:0).Machine.pnode;
  Alcotest.(check int) "shard 1 on node 1" 1 (Placement.processor p ~tid:t1 ~shard:1).Machine.pnode

let test_leader_placement () =
  let g, t1, _, _, _ = Fixtures.pipeline () in
  let m = Mapping.set_distribute (Mapping.default_start g (machine ())) t1 false in
  let p = resolve_exn g (machine ()) m in
  Alcotest.(check int) "shard 0 leader" 0 (Placement.processor p ~tid:t1 ~shard:0).Machine.pnode;
  Alcotest.(check int) "shard 1 leader too" 0 (Placement.processor p ~tid:t1 ~shard:1).Machine.pnode

let test_round_robin_within_node () =
  (* 1 node, 4 shards on 2 CPUs: locals alternate 0,1,0,1 *)
  let g, (t1, _, _), _ = Fixtures.shared_halo () in
  let machine = Presets.testbed ~nodes:1 in
  let m = Mapping.all_cpu g machine in
  let p = resolve_exn g machine m in
  let locals = List.init 4 (fun s -> (Placement.processor p ~tid:t1 ~shard:s).Machine.plocal) in
  Alcotest.(check (list int)) "round robin" [ 0; 1; 0; 1 ] locals

let test_arg_memory_closest () =
  let g, t1, _, out, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  let p = resolve_exn g (machine ()) m in
  let mem = Placement.arg_memory p ~cid:out ~shard:1 in
  let proc = Placement.processor p ~tid:t1 ~shard:1 in
  Alcotest.(check bool) "fb kind" true (Kinds.equal_mem mem.Machine.mkind Kinds.Frame_buffer);
  Alcotest.(check int) "same node as proc" proc.Machine.pnode mem.Machine.mnode

let test_capacity_oom_strict () =
  let g, _, _ = Fixtures.oversized () in
  let m = Mapping.default_start g (machine ()) in
  match Placement.resolve (machine ()) g m with
  | Error (Placement.Out_of_memory reason) ->
      Alcotest.(check bool) "mentions FB" true (Str_helpers.contains reason "FB")
  | Error (Placement.Invalid_mapping r) -> Alcotest.fail ("unexpected invalid: " ^ r)
  | Ok _ -> Alcotest.fail "expected OOM"

let test_capacity_fallback_demotes () =
  let g, _, c = Fixtures.oversized () in
  let m = Mapping.default_start g (machine ()) in
  let p = resolve_exn ~fallback:true g (machine ()) m in
  Alcotest.(check bool) "demotions happened" true (Placement.demotions p > 0);
  (* demoted shards now sit in ZC *)
  let kinds = List.init 2 (fun s -> Placement.effective_mem_kind p ~cid:c ~shard:s) in
  Alcotest.(check bool) "some shard in ZC" true (List.mem Kinds.Zero_copy kinds)

let test_fallback_still_ooms_when_nothing_fits () =
  (* 20 GB argument per shard cannot fit FB (1 GB) nor ZC (2 GB) *)
  let g, _, _ = Fixtures.oversized ~bytes:40e9 () in
  let m = Mapping.default_start g (machine ()) in
  match Placement.resolve ~fallback:true (machine ()) g m with
  | Error (Placement.Out_of_memory _) -> ()
  | Error (Placement.Invalid_mapping r) -> Alcotest.fail ("unexpected invalid: " ^ r)
  | Ok _ -> Alcotest.fail "expected OOM even with fallback"

let test_invalid_mapping_rejected () =
  let g, t, _ = Fixtures.gpu_only () in
  let m = Mapping.set_proc (Mapping.default_start g (machine ())) t Kinds.Cpu in
  match Placement.resolve (machine ()) g m with
  | Error (Placement.Invalid_mapping _) -> ()
  | Error (Placement.Out_of_memory _) -> Alcotest.fail "expected invalid, got OOM"
  | Ok _ -> Alcotest.fail "expected invalid"

let test_alias_no_double_count () =
  (* producer and consumer of the same data in the same memory count once *)
  let g, _, _, out, _inp = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  let p = resolve_exn g (machine ()) m in
  let mem = Placement.arg_memory p ~cid:out ~shard:0 in
  let resident = Placement.bytes_resident p mem in
  (* per-shard 1 MB of "data" (consume.data aliases) + 0.5 MB aux *)
  Alcotest.(check bool)
    (Printf.sprintf "resident %.0f counts data once" resident)
    true
    (resident <= 1.6e6)

let test_different_memory_no_alias () =
  let g, _, _, _, inp = Fixtures.pipeline () in
  let m = Mapping.set_mem (Mapping.default_start g (machine ())) inp Kinds.Zero_copy in
  let p = resolve_exn g (machine ()) m in
  let zc = Placement.arg_memory p ~cid:inp ~shard:0 in
  Alcotest.(check bool) "consumer copy allocated in ZC" true
    (Placement.bytes_resident p zc >= 1e6)

let suite =
  [
    Alcotest.test_case "blocked distribution" `Quick test_blocked_distribution;
    Alcotest.test_case "leader placement" `Quick test_leader_placement;
    Alcotest.test_case "round robin" `Quick test_round_robin_within_node;
    Alcotest.test_case "closest memory" `Quick test_arg_memory_closest;
    Alcotest.test_case "strict OOM" `Quick test_capacity_oom_strict;
    Alcotest.test_case "fallback demotes" `Quick test_capacity_fallback_demotes;
    Alcotest.test_case "fallback exhausted" `Quick test_fallback_still_ooms_when_nothing_fits;
    Alcotest.test_case "invalid rejected" `Quick test_invalid_mapping_rejected;
    Alcotest.test_case "alias accounting" `Quick test_alias_no_double_count;
    Alcotest.test_case "no alias across memories" `Quick test_different_memory_no_alias;
  ]
