test/fixtures.ml: Graph Kinds Mode Pattern Presets
