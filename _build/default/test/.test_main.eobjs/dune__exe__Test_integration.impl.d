test/test_integration.ml: Alcotest App Ccd Cd Driver Ensemble Evaluator Exec Float Graph Kinds Lazy List Machine Maestro Mapping Pennant Placement Presets Printf
