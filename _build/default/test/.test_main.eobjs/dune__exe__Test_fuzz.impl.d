test/test_fuzz.ml: Array Ccd Codec Colocation Evaluator Exec Gen Graph Graph_codec Heft Kinds Lazy List Machine Mapping Overlap Placement Presets QCheck QCheck_alcotest Rng Space
