test/gen.ml: Array Gen List Printf QCheck Rng Workload
