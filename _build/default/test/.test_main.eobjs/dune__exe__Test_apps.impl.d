test/test_apps.ml: Alcotest App App_util Array Circuit Exec Graph Hashtbl Htr Kinds List Machine Maestro Mapping Pennant Placement Presets Printf Stencil
