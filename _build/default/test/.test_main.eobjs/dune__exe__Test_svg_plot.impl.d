test/test_svg_plot.ml: Alcotest Filename Float List Printf Str_helpers String Svg_plot Sys
