test/test_online.ml: Alcotest App Mapping Online Presets Printf
