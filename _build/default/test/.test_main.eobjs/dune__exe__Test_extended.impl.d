test/test_extended.ml: Alcotest Array Ccd Codec Evaluator Exec Fixtures Float Graph List Machine Mapping Placement Printf Rng Space Str_helpers String
