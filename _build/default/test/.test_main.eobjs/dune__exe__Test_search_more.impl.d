test/test_search_more.ml: Alcotest App Array Descent Driver Ensemble Evaluator Fixtures Float Graph Heft Kinds List Mapping Presets Profile Profiles_db Stats
