test/test_graph.ml: Alcotest Fixtures Format Graph Int Kinds List Mode Option Str_helpers
