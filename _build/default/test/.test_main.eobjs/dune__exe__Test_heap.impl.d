test/test_heap.ml: Alcotest Heap List Option QCheck QCheck_alcotest
