test/test_table.ml: Alcotest List Option Str_helpers String Table
