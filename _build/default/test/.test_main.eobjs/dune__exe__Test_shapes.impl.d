test/test_shapes.ml: Alcotest App Ccd Evaluator Exec Graph Kinds Lazy List Mapping Placement Presets Printf
