test/test_overlap.ml: Alcotest Fixtures List Overlap QCheck QCheck_alcotest
