test/test_space.ml: Alcotest Fixtures Kinds List Mapping Pennant Presets Rng Space
