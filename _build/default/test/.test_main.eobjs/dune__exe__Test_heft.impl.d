test/test_heft.ml: Alcotest App Array Ccd Evaluator Exec Fixtures Graph Heft Kinds List Mapping Placement Presets Printf
