test/test_colocation.ml: Alcotest Colocation Fixtures Kinds List Mapping Overlap QCheck QCheck_alcotest Rng Space
