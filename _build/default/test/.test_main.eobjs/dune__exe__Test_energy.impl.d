test/test_energy.ml: Alcotest Ccd Energy Evaluator Exec Fixtures Float Kinds Mapping Placement Presets
