test/test_cost.ml: Alcotest Cost Graph Kinds Mode Presets
