test/test_profile.ml: Alcotest Fixtures Graph List Profile
