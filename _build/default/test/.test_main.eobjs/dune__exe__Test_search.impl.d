test/test_search.ml: Alcotest Annealing Ccd Cd Driver Ensemble Evaluator Fixtures Float Graph Kinds List Mapping Mode Presets Printf Random_search Stats
