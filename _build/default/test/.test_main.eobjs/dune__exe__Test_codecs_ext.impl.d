test/test_codecs_ext.ml: Alcotest App Array Exec Fixtures Graph Graph_codec List Machine Machine_codec Mapping Mode Placement Presets Printf Str_helpers String
