test/test_evaluator.ml: Alcotest Evaluator Fixtures Float Kinds List Mapping Profile
