test/test_placement.ml: Alcotest Fixtures Kinds List Machine Mapping Placement Presets Printf Str_helpers
