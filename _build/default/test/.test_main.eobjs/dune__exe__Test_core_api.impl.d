test/test_core_api.ml: Alcotest App Automap_api Fixtures Kinds List Mapping Presets Report Str_helpers
