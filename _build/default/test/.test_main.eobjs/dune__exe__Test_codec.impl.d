test/test_codec.ml: Alcotest Codec Fixtures Kinds Mapping Printf QCheck QCheck_alcotest Rng Space Str_helpers
