test/test_workload.ml: Alcotest Graph List Pattern Str_helpers Workload
