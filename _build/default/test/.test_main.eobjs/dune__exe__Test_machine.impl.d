test/test_machine.ml: Alcotest Array Kinds List Machine Option Presets
