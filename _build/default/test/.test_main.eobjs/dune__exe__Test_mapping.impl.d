test/test_mapping.ml: Alcotest Fixtures Format Graph Kinds List Mapping Mode Presets QCheck QCheck_alcotest Rng Space Str_helpers String
