test/test_des_invariants.ml: Array Exec Float Gen Graph Hashtbl Lazy List Option Presets QCheck QCheck_alcotest Rng Space String Trace
