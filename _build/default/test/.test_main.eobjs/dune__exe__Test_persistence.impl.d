test/test_persistence.ml: Alcotest Evaluator Fixtures List Mapping Portfolio Profiles_db Rng Space Stats Str_helpers
