test/test_exec.ml: Alcotest Array Exec Fixtures Graph Kinds List Mapping Mode Placement Presets QCheck QCheck_alcotest
