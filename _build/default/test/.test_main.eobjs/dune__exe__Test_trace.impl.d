test/test_trace.ml: Alcotest Array Exec Fixtures Kinds List Mapping Placement Str_helpers String Trace
