let machine () = Presets.testbed ~nodes:1

let task ~flops ~bytes ~gpu_eff =
  let b = Graph.Builder.create ~name:"cost" () in
  let t =
    Graph.Builder.add_task b ~name:"t" ~group_size:1 ~variants:[ Kinds.Cpu; Kinds.Gpu ]
      ~flops ~gpu_efficiency:gpu_eff ()
  in
  let _ = Graph.Builder.add_arg b ~task:t ~name:"t.x" ~bytes ~mode:Mode.Read_write in
  Graph.task (Graph.Builder.build b) t

let fb _ = Kinds.Frame_buffer
let zc _ = Kinds.Zero_copy

let test_launch_floor () =
  let m = machine () in
  let t = task ~flops:0.0 ~bytes:8.0 ~gpu_eff:1.0 in
  let d = Cost.task_duration m t Kinds.Gpu ~arg_mem:fb in
  Alcotest.(check bool) "at least the launch overhead" true (d >= 30e-6)

let test_compute_bound () =
  let m = machine () in
  (* 4e9 flops at 4 TFLOP/s = 1 ms >> bandwidth term *)
  let t = task ~flops:4e9 ~bytes:8.0 ~gpu_eff:1.0 in
  let d = Cost.task_duration m t Kinds.Gpu ~arg_mem:fb in
  Alcotest.(check bool) "about 1ms" true (d > 0.9e-3 && d < 1.2e-3)

let test_bandwidth_bound_zc_penalty () =
  let m = machine () in
  (* 100 MB streamed, negligible compute: FB 500 GB/s vs ZC 10 GB/s *)
  let t = task ~flops:1.0 ~bytes:1e8 ~gpu_eff:1.0 in
  let d_fb = Cost.task_duration m t Kinds.Gpu ~arg_mem:fb in
  let d_zc = Cost.task_duration m t Kinds.Gpu ~arg_mem:zc in
  Alcotest.(check bool) "zc much slower" true (d_zc > 20.0 *. d_fb)

let test_efficiency_scales_compute () =
  let m = machine () in
  let fast = task ~flops:4e9 ~bytes:8.0 ~gpu_eff:1.0 in
  let slow = task ~flops:4e9 ~bytes:8.0 ~gpu_eff:0.5 in
  let df = Cost.task_duration m fast Kinds.Gpu ~arg_mem:fb in
  let ds = Cost.task_duration m slow Kinds.Gpu ~arg_mem:fb in
  Alcotest.(check bool) "half efficiency ~ double time" true
    (ds > 1.8 *. df && ds < 2.2 *. df)

let test_efficiency_accessor () =
  let t = task ~flops:1.0 ~bytes:8.0 ~gpu_eff:0.25 in
  Alcotest.(check (float 1e-9)) "gpu eff" 0.25 (Cost.efficiency t Kinds.Gpu);
  Alcotest.(check (float 1e-9)) "cpu eff default" 1.0 (Cost.efficiency t Kinds.Cpu)

let suite =
  [
    Alcotest.test_case "launch floor" `Quick test_launch_floor;
    Alcotest.test_case "compute bound" `Quick test_compute_bound;
    Alcotest.test_case "zc bandwidth penalty" `Quick test_bandwidth_bound_zc_penalty;
    Alcotest.test_case "efficiency scales" `Quick test_efficiency_scales_compute;
    Alcotest.test_case "efficiency accessor" `Quick test_efficiency_accessor;
  ]
