let test_builder_counts () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  Alcotest.(check int) "tasks" 2 (Graph.n_tasks g);
  Alcotest.(check int) "collections" 3 (Graph.n_collections g);
  Alcotest.(check int) "edges" 1 (List.length g.Graph.edges);
  Alcotest.(check int) "overlaps" 1 (List.length g.Graph.overlaps)

let test_dense_cids () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  List.iteri
    (fun i (c : Graph.collection) -> Alcotest.(check int) "dense cid" i c.Graph.cid)
    (Graph.collections g)

let test_owner () =
  let g, t1, t2, out, inp = Fixtures.pipeline () in
  Alcotest.(check int) "out owned by producer" t1 (Graph.collection g out).Graph.owner;
  Alcotest.(check int) "inp owned by consumer" t2 (Graph.collection g inp).Graph.owner

let test_topological_order () =
  let g, (t1, t2, t3), _ = Fixtures.shared_halo () in
  let order = List.map (fun (t : Graph.task) -> t.Graph.tid) (Graph.topological_order g) in
  Alcotest.(check int) "all tasks" 3 (List.length order);
  let pos x = Option.get (List.find_index (Int.equal x) order) in
  Alcotest.(check bool) "writer before reader_a" true (pos t1 < pos t2);
  Alcotest.(check bool) "writer before reader_b" true (pos t1 < pos t3)

let test_predecessors_successors () =
  let g, (t1, t2, _), _ = Fixtures.shared_halo () in
  Alcotest.(check int) "writer has no preds" 0 (List.length (Graph.predecessors g t1));
  Alcotest.(check int) "writer feeds two" 2 (List.length (Graph.successors g t1));
  Alcotest.(check int) "reader_a one pred" 1 (List.length (Graph.predecessors g t2))

let test_total_bytes () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  Alcotest.(check (float 1.0)) "total" 2.5e6 (Graph.total_bytes g)

let test_has_variant () =
  let g, t, _ = Fixtures.gpu_only () in
  let task = Graph.task g t in
  Alcotest.(check bool) "gpu yes" true (Graph.has_variant task Kinds.Gpu);
  Alcotest.(check bool) "cpu no" false (Graph.has_variant task Kinds.Cpu)

let build_invalid f =
  try
    ignore (f ());
    None
  with Graph.Invalid_graph m -> Some m

let test_rejects_cycle () =
  let result =
    build_invalid (fun () ->
        let b = Graph.Builder.create ~name:"cycle" () in
        let t1 = Graph.Builder.add_task b ~name:"a" ~group_size:1 ~variants:[ Kinds.Cpu ] ~flops:1.0 () in
        let c1 = Graph.Builder.add_arg b ~task:t1 ~name:"a.x" ~bytes:1.0 ~mode:Mode.Read_write in
        let t2 = Graph.Builder.add_task b ~name:"b" ~group_size:1 ~variants:[ Kinds.Cpu ] ~flops:1.0 () in
        let c2 = Graph.Builder.add_arg b ~task:t2 ~name:"b.x" ~bytes:1.0 ~mode:Mode.Read_write in
        Graph.Builder.add_dep b ~src:c1 ~dst:c2;
        Graph.Builder.add_dep b ~src:c2 ~dst:c1;
        Graph.Builder.build b)
  in
  Alcotest.(check bool) "cycle rejected" true (Option.is_some result)

let test_carried_edge_breaks_cycle () =
  (* the same structure is legal when the back edge is loop-carried *)
  let b = Graph.Builder.create ~iterations:2 ~name:"carried" () in
  let t1 = Graph.Builder.add_task b ~name:"a" ~group_size:1 ~variants:[ Kinds.Cpu ] ~flops:1.0 () in
  let c1 = Graph.Builder.add_arg b ~task:t1 ~name:"a.x" ~bytes:1.0 ~mode:Mode.Read_write in
  let t2 = Graph.Builder.add_task b ~name:"b" ~group_size:1 ~variants:[ Kinds.Cpu ] ~flops:1.0 () in
  let c2 = Graph.Builder.add_arg b ~task:t2 ~name:"b.x" ~bytes:1.0 ~mode:Mode.Read_write in
  Graph.Builder.add_dep b ~src:c1 ~dst:c2;
  Graph.Builder.add_dep b ~src:c2 ~dst:c1 ~carried:true;
  let g = Graph.Builder.build b in
  Alcotest.(check int) "built" 2 (Graph.n_tasks g)

let test_rejects_bad_modes () =
  let r =
    build_invalid (fun () ->
        let b = Graph.Builder.create ~name:"modes" () in
        let t1 = Graph.Builder.add_task b ~name:"a" ~group_size:1 ~variants:[ Kinds.Cpu ] ~flops:1.0 () in
        let c1 = Graph.Builder.add_arg b ~task:t1 ~name:"a.x" ~bytes:1.0 ~mode:Mode.Read in
        let t2 = Graph.Builder.add_task b ~name:"b" ~group_size:1 ~variants:[ Kinds.Cpu ] ~flops:1.0 () in
        let c2 = Graph.Builder.add_arg b ~task:t2 ~name:"b.x" ~bytes:1.0 ~mode:Mode.Read in
        Graph.Builder.add_dep b ~src:c1 ~dst:c2)
  in
  Alcotest.(check bool) "read-only source rejected" true (Option.is_some r)

let test_rejects_bad_sizes () =
  let r =
    build_invalid (fun () ->
        let b = Graph.Builder.create ~name:"sizes" () in
        let t = Graph.Builder.add_task b ~name:"a" ~group_size:1 ~variants:[ Kinds.Cpu ] ~flops:1.0 () in
        Graph.Builder.add_arg b ~task:t ~name:"a.x" ~bytes:0.0 ~mode:Mode.Read)
  in
  Alcotest.(check bool) "zero bytes rejected" true (Option.is_some r);
  let r2 =
    build_invalid (fun () ->
        let b = Graph.Builder.create ~name:"sizes2" () in
        Graph.Builder.add_task b ~name:"a" ~group_size:0 ~variants:[ Kinds.Cpu ] ~flops:1.0 ())
  in
  Alcotest.(check bool) "zero group rejected" true (Option.is_some r2)

let test_rejects_oversized_overlap () =
  let r =
    build_invalid (fun () ->
        let b = Graph.Builder.create ~name:"ov" () in
        let t = Graph.Builder.add_task b ~name:"a" ~group_size:1 ~variants:[ Kinds.Cpu ] ~flops:1.0 () in
        let c1 = Graph.Builder.add_arg b ~task:t ~name:"a.x" ~bytes:10.0 ~mode:Mode.Write in
        let c2 = Graph.Builder.add_arg b ~task:t ~name:"a.y" ~bytes:10.0 ~mode:Mode.Read in
        Graph.Builder.add_overlap b c1 c2 ~bytes:100.0)
  in
  Alcotest.(check bool) "overlap larger than args rejected" true (Option.is_some r)

let test_rejects_variantless_task () =
  let r =
    build_invalid (fun () ->
        let b = Graph.Builder.create ~name:"v" () in
        Graph.Builder.add_task b ~name:"a" ~group_size:1 ~variants:[] ~flops:1.0 ())
  in
  Alcotest.(check bool) "no variants rejected" true (Option.is_some r)

let test_pp_summary () =
  let g, _, _ = Fixtures.shared_halo () in
  let s = Format.asprintf "%a" Graph.pp_summary g in
  Alcotest.(check bool) "mentions task count" true (Str_helpers.contains s "3 tasks")

let suite =
  [
    Alcotest.test_case "builder counts" `Quick test_builder_counts;
    Alcotest.test_case "dense cids" `Quick test_dense_cids;
    Alcotest.test_case "owner" `Quick test_owner;
    Alcotest.test_case "topological order" `Quick test_topological_order;
    Alcotest.test_case "preds/succs" `Quick test_predecessors_successors;
    Alcotest.test_case "total bytes" `Quick test_total_bytes;
    Alcotest.test_case "has_variant" `Quick test_has_variant;
    Alcotest.test_case "rejects cycle" `Quick test_rejects_cycle;
    Alcotest.test_case "carried edge ok" `Quick test_carried_edge_breaks_cycle;
    Alcotest.test_case "rejects bad modes" `Quick test_rejects_bad_modes;
    Alcotest.test_case "rejects bad sizes" `Quick test_rejects_bad_sizes;
    Alcotest.test_case "rejects oversized overlap" `Quick test_rejects_oversized_overlap;
    Alcotest.test_case "rejects variantless" `Quick test_rejects_variantless_task;
    Alcotest.test_case "pp summary" `Quick test_pp_summary;
  ]
