let test_of_graph () =
  let g, _, _ = Fixtures.shared_halo () in
  let c = Overlap.of_graph g in
  Alcotest.(check int) "edges" 3 (Overlap.n_edges c);
  Alcotest.(check bool) "not empty" false (Overlap.is_empty c)

let test_neighbors () =
  let g, _, (w, ra, _, rb) = Fixtures.shared_halo () in
  let c = Overlap.of_graph g in
  let ns = List.map fst (Overlap.neighbors c w) in
  Alcotest.(check bool) "w ~ ra" true (List.mem ra ns);
  Alcotest.(check bool) "w ~ rb" true (List.mem rb ns);
  Alcotest.(check int) "two partners" 2 (List.length ns)

let test_prune_lightest () =
  let g, _, (w, ra, _, rb) = Fixtures.shared_halo () in
  let c = Overlap.of_graph g in
  (* weights: w~ra 4MB, w~rb 2MB, ra~rb 1MB -> pruning 1 removes ra~rb *)
  let c1 = Overlap.prune_lightest c 1 in
  Alcotest.(check int) "one removed" 2 (Overlap.n_edges c1);
  Alcotest.(check bool) "lightest gone" false (List.mem rb (Overlap.partners c1 ra));
  let c2 = Overlap.prune_lightest c1 1 in
  Alcotest.(check bool) "next lightest gone" false (List.mem rb (Overlap.partners c2 w));
  Alcotest.(check int) "heaviest stays" 1 (Overlap.n_edges c2);
  (* pruning is pure *)
  Alcotest.(check int) "original untouched" 3 (Overlap.n_edges c)

let test_prune_all () =
  let g, _, _ = Fixtures.shared_halo () in
  let c = Overlap.of_graph g in
  let empty = Overlap.prune_lightest c 100 in
  Alcotest.(check bool) "empty" true (Overlap.is_empty empty);
  Alcotest.(check int) "no edges" 0 (Overlap.n_edges empty)

let test_prune_zero () =
  let g, _, _ = Fixtures.shared_halo () in
  let c = Overlap.of_graph g in
  Alcotest.(check int) "no-op" 3 (Overlap.n_edges (Overlap.prune_lightest c 0))

let test_of_edges_dedup () =
  let c = Overlap.of_edges [ (1, 2, 5.0); (2, 1, 9.0) ] in
  Alcotest.(check int) "normalized dedup" 1 (Overlap.n_edges c);
  match Overlap.edges c with
  | [ (1, 2, w) ] -> Alcotest.(check (float 0.0)) "keeps heaviest" 9.0 w
  | _ -> Alcotest.fail "unexpected edges"

let test_of_edges_validation () =
  Alcotest.check_raises "self overlap" (Invalid_argument "Overlap.of_edges: self-overlap")
    (fun () -> ignore (Overlap.of_edges [ (1, 1, 5.0) ]));
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Overlap.of_edges: non-positive weight") (fun () ->
      ignore (Overlap.of_edges [ (1, 2, 0.0) ]))

let test_o_map () =
  let g, (t1, t2, t3), (w, ra, _, rb) = Fixtures.shared_halo () in
  let c = Overlap.of_graph g in
  let o = Overlap.o_map g c w in
  Alcotest.(check bool) "includes self first" true (List.hd o = (t1, w));
  Alcotest.(check bool) "includes (t2, ra)" true (List.mem (t2, ra) o);
  Alcotest.(check bool) "includes (t3, rb)" true (List.mem (t3, rb) o);
  Alcotest.(check int) "size" 3 (List.length o)

let prop_prune_monotone =
  QCheck.Test.make ~name:"pruning k edges leaves max(0, n-k)"
    QCheck.(pair (int_bound 10) (int_bound 6))
    (fun (n_edges, k) ->
      let edges = List.init n_edges (fun i -> (i, i + 1, float_of_int (i + 1))) in
      let c = Overlap.of_edges edges in
      Overlap.n_edges (Overlap.prune_lightest c k) = max 0 (n_edges - k))

let suite =
  [
    Alcotest.test_case "of_graph" `Quick test_of_graph;
    Alcotest.test_case "neighbors" `Quick test_neighbors;
    Alcotest.test_case "prune lightest" `Quick test_prune_lightest;
    Alcotest.test_case "prune all" `Quick test_prune_all;
    Alcotest.test_case "prune zero" `Quick test_prune_zero;
    Alcotest.test_case "dedup" `Quick test_of_edges_dedup;
    Alcotest.test_case "validation" `Quick test_of_edges_validation;
    Alcotest.test_case "o_map" `Quick test_o_map;
    QCheck_alcotest.to_alcotest prop_prune_monotone;
  ]
