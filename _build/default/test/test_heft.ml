let machine () = Fixtures.default_machine ()

let test_produces_valid_mapping () =
  let g, _, _ = Fixtures.shared_halo () in
  let m = Heft.mapping (machine ()) g in
  Alcotest.(check bool) "valid" true (Mapping.is_valid g (machine ()) m)

let test_respects_variants () =
  let g, t, _ = Fixtures.gpu_only () in
  let m = Heft.mapping (machine ()) g in
  Alcotest.(check bool) "gpu-only task on gpu" true
    (Kinds.equal_proc (Mapping.proc_of m t) Kinds.Gpu)

let test_fastest_memory_rule () =
  (* HEFT's limitation by construction: args follow the processor's
     fastest memory, never Zero-Copy *)
  let g, _, _ = Fixtures.shared_halo () in
  let m = Heft.mapping (machine ()) g in
  List.iter
    (fun (c : Graph.collection) ->
      let k = Mapping.proc_of m c.Graph.owner in
      let expected =
        match k with Kinds.Gpu -> Kinds.Frame_buffer | Kinds.Cpu -> Kinds.System
      in
      Alcotest.(check bool) "fastest kind" true
        (Kinds.equal_mem (Mapping.mem_of m c.Graph.cid) expected))
    (Graph.collections g)

let test_ranks_respect_chain () =
  (* upstream tasks accumulate their successors' ranks *)
  let g, t1, t2, _, _ = Fixtures.pipeline () in
  let ranks = Heft.upward_ranks (machine ()) g in
  Alcotest.(check bool) "producer rank > consumer rank" true (ranks.(t1) > ranks.(t2));
  Array.iter (fun r -> Alcotest.(check bool) "positive" true (r > 0.0)) ranks

let test_apps_runnable () =
  (* HEFT mappings of the real apps must be valid and placeable (small
     inputs fit any memory) *)
  let machine = Presets.shepard ~nodes:1 in
  List.iter
    (fun (app, input) ->
      let g = app.App.graph ~nodes:1 ~input in
      let m = Heft.mapping machine g in
      match Exec.run ~noise_sigma:0.0 machine g m with
      | Ok r ->
          Alcotest.(check bool) (app.App.app_name ^ " runs") true (r.Exec.makespan > 0.0)
      | Error e -> Alcotest.fail (app.App.app_name ^ ": " ^ Placement.error_to_string e))
    [ (App.circuit, "n50w200"); (App.pennant, "320x90"); (App.htr, "8x8y9z") ]

let test_ccd_at_least_as_good () =
  (* noise-free: CCD should match or beat HEFT (it can express the
     memory choices HEFT cannot) *)
  let machine = Presets.shepard ~nodes:1 in
  let g = App.circuit.App.graph ~nodes:1 ~input:"n100w400" in
  let heft = Heft.mapping machine g in
  let time m =
    match Exec.run ~noise_sigma:0.0 machine g m with
    | Ok r -> r.Exec.per_iteration
    | Error _ -> infinity
  in
  let ev = Evaluator.create ~runs:1 ~noise_sigma:0.0 ~seed:0 machine g in
  let best, _ = Ccd.search ev in
  Alcotest.(check bool)
    (Printf.sprintf "ccd %.4g <= heft %.4g" (time best) (time heft))
    true
    (time best <= time heft +. 1e-12)

let suite =
  [
    Alcotest.test_case "valid mapping" `Quick test_produces_valid_mapping;
    Alcotest.test_case "respects variants" `Quick test_respects_variants;
    Alcotest.test_case "fastest memory" `Quick test_fastest_memory_rule;
    Alcotest.test_case "ranks" `Quick test_ranks_respect_chain;
    Alcotest.test_case "apps runnable" `Quick test_apps_runnable;
    Alcotest.test_case "ccd >= heft" `Quick test_ccd_at_least_as_good;
  ]
