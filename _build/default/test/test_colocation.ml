let machine () = Fixtures.default_machine ()

(* Worked example on the shared_halo fixture: pivot = (writer, state)
   moved to (GPU, ZC); its overlap partners reader_a.state and
   reader_b.state must follow to ZC. *)
let test_partners_follow_pivot () =
  let g, (t1, _, _), (w, ra, _, rb) = Fixtures.shared_halo () in
  let overlap = Overlap.of_graph g in
  let base = Mapping.default_start g (machine ()) in
  let f' = Mapping.set_mem (Mapping.set_proc base t1 Kinds.Gpu) w Kinds.Zero_copy in
  let f'' =
    Colocation.apply g (machine ()) ~overlap ~mapping:f' ~t:t1 ~c:w ~k:Kinds.Gpu
      ~r:Kinds.Zero_copy
  in
  Alcotest.(check bool) "ra follows" true
    (Kinds.equal_mem (Mapping.mem_of f'' ra) Kinds.Zero_copy);
  Alcotest.(check bool) "rb follows" true
    (Kinds.equal_mem (Mapping.mem_of f'' rb) Kinds.Zero_copy);
  Alcotest.(check bool) "valid" true (Mapping.is_valid g (machine ()) f'');
  Alcotest.(check bool) "colocation satisfied" true
    (Colocation.satisfies_colocation overlap f'')

(* Moving the pivot to FB strands CPU-mapped partner tasks, which must
   migrate to the pivot's processor kind k = GPU (constraint (1)). *)
let test_task_repair_moves_to_k () =
  let g, (t1, t2, t3), (w, _, rpriv, _) = Fixtures.shared_halo () in
  let overlap = Overlap.of_graph g in
  let base = Mapping.all_cpu g (machine ()) in
  let f' = Mapping.set_mem (Mapping.set_proc base t1 Kinds.Gpu) w Kinds.Frame_buffer in
  let f'' =
    Colocation.apply g (machine ()) ~overlap ~mapping:f' ~t:t1 ~c:w ~k:Kinds.Gpu
      ~r:Kinds.Frame_buffer
  in
  Alcotest.(check bool) "reader_a moved to GPU" true
    (Kinds.equal_proc (Mapping.proc_of f'' t2) Kinds.Gpu);
  Alcotest.(check bool) "reader_b moved to GPU" true
    (Kinds.equal_proc (Mapping.proc_of f'' t3) Kinds.Gpu);
  (* reader_a's private arg was in System, unreachable from GPU: it
     must have been remapped to a GPU-addressable kind *)
  Alcotest.(check bool) "private arg repaired" true
    (Kinds.accessible Kinds.Gpu (Mapping.mem_of f'' rpriv));
  Alcotest.(check bool) "globally valid" true (Mapping.is_valid g (machine ()) f'')

let test_no_overlap_no_change () =
  let g, t1, _, out, inp = Fixtures.pipeline () in
  let empty = Overlap.of_edges [] in
  let base = Mapping.default_start g (machine ()) in
  let f' = Mapping.set_mem base out Kinds.Zero_copy in
  let f'' =
    Colocation.apply g (machine ()) ~overlap:empty ~mapping:f' ~t:t1 ~c:out ~k:Kinds.Gpu
      ~r:Kinds.Zero_copy
  in
  Alcotest.(check bool) "partner untouched without overlap edge" true
    (Kinds.equal_mem (Mapping.mem_of f'' inp) Kinds.Frame_buffer);
  Alcotest.(check bool) "pivot kept" true
    (Kinds.equal_mem (Mapping.mem_of f'' out) Kinds.Zero_copy)

let test_pivot_overlaps_are_pinned () =
  (* partners of the pivot stay at r even when their own task gets
     re-checked: line 17 of Algorithm 2 *)
  let g, (t1, _, _), (w, ra, _, rb) = Fixtures.shared_halo () in
  let overlap = Overlap.of_graph g in
  let base = Mapping.all_cpu g (machine ()) in
  let f' = Mapping.set_mem (Mapping.set_proc base t1 Kinds.Gpu) w Kinds.Frame_buffer in
  let f'' =
    Colocation.apply g (machine ()) ~overlap ~mapping:f' ~t:t1 ~c:w ~k:Kinds.Gpu
      ~r:Kinds.Frame_buffer
  in
  Alcotest.(check bool) "ra pinned to r" true
    (Kinds.equal_mem (Mapping.mem_of f'' ra) Kinds.Frame_buffer);
  Alcotest.(check bool) "rb pinned to r" true
    (Kinds.equal_mem (Mapping.mem_of f'' rb) Kinds.Frame_buffer)

let test_satisfies_colocation () =
  let g, _, (w, ra, _, _) = Fixtures.shared_halo () in
  let overlap = Overlap.of_graph g in
  let base = Mapping.default_start g (machine ()) in
  Alcotest.(check bool) "default colocated (all FB)" true
    (Colocation.satisfies_colocation overlap base);
  let broken = Mapping.set_mem base ra Kinds.Zero_copy in
  Alcotest.(check bool) "moving one endpoint breaks it" false
    (Colocation.satisfies_colocation overlap broken);
  ignore w

let prop_apply_yields_valid_and_colocated =
  QCheck.Test.make ~name:"colocation apply restores both constraints"
    QCheck.(pair (int_bound 100_000) (int_bound 3))
    (fun (seed, which) ->
      let g, (t1, t2, t3), (w, ra, _, rb) = Fixtures.shared_halo () in
      let machine = Fixtures.default_machine () in
      let overlap = Overlap.of_graph g in
      let space = Space.make g machine in
      let start = Space.random_mapping space (Rng.create seed) in
      let t, c = List.nth [ (t1, w); (t2, ra); (t3, rb); (t1, w) ] which in
      let k = if seed mod 2 = 0 then Kinds.Gpu else Kinds.Cpu in
      let r = List.nth (Kinds.accessible_mem_kinds k) (seed mod 2) in
      let f' = Mapping.set_mem (Mapping.set_proc start t k) c r in
      let f'' = Colocation.apply g machine ~overlap ~mapping:f' ~t ~c ~k ~r in
      Mapping.is_valid g machine f''
      && Colocation.satisfies_colocation overlap f''
      && Kinds.equal_mem (Mapping.mem_of f'' c) r)

let suite =
  [
    Alcotest.test_case "partners follow pivot" `Quick test_partners_follow_pivot;
    Alcotest.test_case "task repair to k" `Quick test_task_repair_moves_to_k;
    Alcotest.test_case "no overlap no change" `Quick test_no_overlap_no_change;
    Alcotest.test_case "pivot partners pinned" `Quick test_pivot_overlaps_are_pinned;
    Alcotest.test_case "satisfies_colocation" `Quick test_satisfies_colocation;
    QCheck_alcotest.to_alcotest prop_apply_yields_valid_and_colocated;
  ]
