(* Behavioural pins for the calibrated cost model: the qualitative
   shapes the figures depend on.  If a refactor of the simulator or the
   presets breaks one of these, the paper reproduction silently
   degrades — these tests make that loud instead. *)

let shepard = lazy (Presets.shepard ~nodes:1)

let time machine g mapping =
  match Exec.run ~noise_sigma:0.0 machine g mapping with
  | Ok r -> r.Exec.per_iteration
  | Error e -> Alcotest.fail (Placement.error_to_string e)

let cpu_vs_gpu app input =
  let machine = Lazy.force shepard in
  let g = app.App.graph ~nodes:1 ~input in
  ( time machine g (Mapping.all_cpu g machine),
    time machine g (Mapping.default_start g machine) )

(* Figure 6's driving mechanism: CPU wins at small inputs (the GPU is
   launch-bound), the GPU wins at large inputs (it is compute/bandwidth
   bound) — so a crossover exists. *)
let test_circuit_crossover () =
  let cpu_s, gpu_s = cpu_vs_gpu App.circuit "n50w200" in
  Alcotest.(check bool)
    (Printf.sprintf "small: cpu %.4g < gpu %.4g" cpu_s gpu_s)
    true (cpu_s < gpu_s);
  let cpu_l, gpu_l = cpu_vs_gpu App.circuit "n12800w51200" in
  Alcotest.(check bool)
    (Printf.sprintf "large: gpu %.4g < cpu %.4g" gpu_l cpu_l)
    true (gpu_l < cpu_l)

let test_pennant_crossover () =
  let cpu_s, gpu_s = cpu_vs_gpu App.pennant "320x90" in
  Alcotest.(check bool) "small: cpu wins" true (cpu_s < gpu_s);
  let cpu_l, gpu_l = cpu_vs_gpu App.pennant "320x5760" in
  Alcotest.(check bool) "large: gpu wins" true (gpu_l < cpu_l)

let test_htr_crossover () =
  let cpu_s, gpu_s = cpu_vs_gpu App.htr "8x8y9z" in
  Alcotest.(check bool) "small: cpu wins" true (cpu_s < gpu_s);
  let cpu_l, gpu_l = cpu_vs_gpu App.htr "128x128y144z" in
  Alcotest.(check bool) "large: gpu wins" true (gpu_l < cpu_l)

(* Default-mapping time grows monotonically with input size (weak
   sanity for the whole cost model). *)
let test_default_monotone_in_input () =
  let machine = Lazy.force shepard in
  List.iter
    (fun (app : App.t) ->
      let times =
        List.map
          (fun input ->
            let g = app.App.graph ~nodes:1 ~input in
            time machine g (Mapping.default_start g machine))
          (app.App.inputs ~nodes:1)
      in
      let rec non_decreasing = function
        | a :: (b :: _ as rest) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s default time monotone (%.4g <= %.4g)" app.App.app_name a b)
              true
              (a <= b *. 1.02);
            non_decreasing rest
        | _ -> ()
      in
      non_decreasing times)
    [ App.circuit; App.stencil; App.pennant; App.htr ]

(* The Figure 8 mechanism: a bandwidth-bound GPU task slows by roughly
   the FB/ZC bandwidth ratio when its data is demoted to Zero-Copy. *)
let test_zc_cliff_magnitude () =
  let machine = Lazy.force shepard in
  let g = App.pennant.App.graph ~nodes:1 ~input:"320x5760" in
  let default = Mapping.default_start g machine in
  let all_zc =
    Mapping.make g
      ~distribute:(fun _ -> true)
      ~proc:(fun t -> if Graph.has_variant t Kinds.Gpu then Kinds.Gpu else Kinds.Cpu)
      ~mem:(fun _ -> Kinds.Zero_copy)
  in
  let slowdown = time machine g all_zc /. time machine g default in
  Alcotest.(check bool)
    (Printf.sprintf "all-ZC slowdown %.1fx in [5, 60]" slowdown)
    true
    (slowdown > 5.0 && slowdown < 60.0)

(* Halo traffic exists and scales with the ghost fraction. *)
let test_halo_bytes_scale () =
  let machine = Presets.shepard ~nodes:4 in
  let bytes input =
    let g = App.stencil.App.graph ~nodes:4 ~input in
    match Exec.run ~noise_sigma:0.0 machine g (Mapping.default_start g machine) with
    | Ok r -> r.Exec.bytes_moved
    | Error e -> Alcotest.fail (Placement.error_to_string e)
  in
  (* same halo rows but wider grids: absolute ghost bytes grow *)
  Alcotest.(check bool) "halo bytes grow with grid" true
    (bytes "16000x4000" > bytes "4000x1000")

(* The §5.3 efficiency claim: CCD spends almost all search time
   executing candidates. *)
let test_ccd_useful_fraction () =
  let machine = Lazy.force shepard in
  let g = App.circuit.App.graph ~nodes:1 ~input:"n100w400" in
  let ev = Evaluator.create ~runs:2 ~noise_sigma:0.01 ~seed:2 machine g in
  ignore (Ccd.search ev);
  let frac = Evaluator.eval_time ev /. Evaluator.virtual_time ev in
  Alcotest.(check bool) (Printf.sprintf "useful %.2f > 0.9" frac) true (frac > 0.9)

(* Weak-scaled default times stay flat across node counts (the fig6
   panels share a y-scale because of this). *)
let test_weak_scaling_flat () =
  let t nodes =
    let machine = Presets.shepard ~nodes in
    let input = List.hd (App.htr.App.inputs ~nodes) in
    let g = App.htr.App.graph ~nodes ~input in
    time machine g (Mapping.default_start g machine)
  in
  let t1 = t 1 and t4 = t 4 in
  Alcotest.(check bool)
    (Printf.sprintf "t4 %.4g within 1.5x of t1 %.4g" t4 t1)
    true
    (t4 < 1.5 *. t1)

let suite =
  [
    Alcotest.test_case "circuit crossover" `Quick test_circuit_crossover;
    Alcotest.test_case "pennant crossover" `Quick test_pennant_crossover;
    Alcotest.test_case "htr crossover" `Quick test_htr_crossover;
    Alcotest.test_case "default monotone" `Quick test_default_monotone_in_input;
    Alcotest.test_case "zc cliff" `Quick test_zc_cliff_magnitude;
    Alcotest.test_case "halo bytes" `Quick test_halo_bytes_scale;
    Alcotest.test_case "ccd useful fraction" `Quick test_ccd_useful_fraction;
    Alcotest.test_case "weak scaling flat" `Quick test_weak_scaling_flat;
  ]
