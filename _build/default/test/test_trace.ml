let machine () = Fixtures.default_machine ()

let traced_run () =
  let g, _, _, _, inp = Fixtures.pipeline () in
  (* force a copy so the trace contains both kinds *)
  let m = Mapping.set_mem (Mapping.default_start g (machine ())) inp Kinds.Zero_copy in
  let collector = Trace.create () in
  match Exec.run ~noise_sigma:0.0 ~trace:collector (machine ()) g m with
  | Ok r -> (collector, r)
  | Error e -> Alcotest.fail (Placement.error_to_string e)

let test_collects_tasks_and_copies () =
  let c, r = traced_run () in
  let es = Trace.entries c in
  let tasks = List.filter (fun e -> e.Trace.kind = Trace.Task_exec) es in
  let copies = List.filter (fun e -> e.Trace.kind = Trace.Copy) es in
  (* 2 tasks x 2 shards *)
  Alcotest.(check int) "task entries" 4 (List.length tasks);
  Alcotest.(check int) "copy entries" r.Exec.n_copies (List.length copies)

let test_entries_within_makespan () =
  let c, r = traced_run () in
  List.iter
    (fun e ->
      Alcotest.(check bool) "start >= 0" true (e.Trace.start_time >= 0.0);
      Alcotest.(check bool) "end <= makespan" true
        (e.Trace.start_time +. e.Trace.duration <= r.Exec.makespan +. 1e-12))
    (Trace.entries c)

let test_busy_matches_trace () =
  let c, r = traced_run () in
  let traced_busy =
    List.fold_left
      (fun acc e -> if e.Trace.kind = Trace.Task_exec then acc +. e.Trace.duration else acc)
      0.0 (Trace.entries c)
  in
  let result_busy = Array.fold_left ( +. ) 0.0 r.Exec.proc_busy in
  Alcotest.(check bool) "trace busy = result busy" true
    (abs_float (traced_busy -. result_busy) < 1e-12)

let test_no_trace_by_default () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  (* simply must not crash without a collector *)
  match Exec.run ~noise_sigma:0.0 (machine ()) g m with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Placement.error_to_string e)

let test_chrome_json_shape () =
  let c, _ = traced_run () in
  let json = Trace.to_chrome_json c in
  Alcotest.(check bool) "has traceEvents" true (Str_helpers.contains json "traceEvents");
  Alcotest.(check bool) "has complete events" true (Str_helpers.contains json "\"ph\":\"X\"");
  Alcotest.(check bool) "names escaped and present" true
    (Str_helpers.contains json "produce.0");
  (* crude balance check *)
  let count ch = String.fold_left (fun acc c -> if c = ch then acc + 1 else acc) 0 json in
  Alcotest.(check int) "balanced braces" (count '{') (count '}')

let test_gantt () =
  let c, _ = traced_run () in
  let g = Trace.gantt ~width:40 c in
  Alcotest.(check bool) "has task marks" true (Str_helpers.contains g "#");
  Alcotest.(check bool) "has copy marks" true (Str_helpers.contains g "=");
  Alcotest.(check bool) "has GPU row" true (Str_helpers.contains g "GPU0")

let test_empty_gantt () =
  Alcotest.(check string) "empty trace" "(empty trace)\n" (Trace.gantt (Trace.create ()))

let test_clear () =
  let c, _ = traced_run () in
  Trace.clear c;
  Alcotest.(check int) "cleared" 0 (Trace.length c)

let suite =
  [
    Alcotest.test_case "collects entries" `Quick test_collects_tasks_and_copies;
    Alcotest.test_case "within makespan" `Quick test_entries_within_makespan;
    Alcotest.test_case "busy matches" `Quick test_busy_matches_trace;
    Alcotest.test_case "no trace by default" `Quick test_no_trace_by_default;
    Alcotest.test_case "chrome json" `Quick test_chrome_json_shape;
    Alcotest.test_case "gantt" `Quick test_gantt;
    Alcotest.test_case "empty gantt" `Quick test_empty_gantt;
    Alcotest.test_case "clear" `Quick test_clear;
  ]
