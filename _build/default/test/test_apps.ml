let shepard () = Presets.shepard ~nodes:1

(* Figure 5's task and collection-argument counts are structural facts
   of the applications; our generators must reproduce them exactly. *)
let test_figure5_counts () =
  let check name g tasks args =
    Alcotest.(check int) (name ^ " tasks") tasks (Graph.n_tasks g);
    Alcotest.(check int) (name ^ " args") args (Graph.n_collections g)
  in
  check "Circuit" (Circuit.graph ~nodes:1 ~input:"n50w200") 3 15;
  check "Stencil" (Stencil.graph ~nodes:1 ~input:"500x500") 2 12;
  check "Pennant" (Pennant.graph ~nodes:1 ~input:"320x90") 31 97;
  check "HTR" (Htr.graph ~nodes:1 ~input:"8x8y9z") 28 72;
  (* 6 HF tasks with 14 args + the 13 LF tasks with 30 collection
     arguments of Figure 5 *)
  check "Maestro" (Maestro.graph ~nodes:1 ~n_lf:4 ~resolution:16 ()) (6 + 13) (14 + 30)

let test_all_graphs_run_under_default () =
  List.iter
    (fun app ->
      (* Maestro's HF sample is sized for a Lassen node's 64 GB of FB *)
      let machine =
        if app.App.app_name = "Maestro" then Presets.lassen ~nodes:1 else shepard ()
      in
      let input = List.hd (app.App.inputs ~nodes:1) in
      let g = app.App.graph ~nodes:1 ~input in
      let m = Mapping.default_start g machine in
      match Exec.run ~noise_sigma:0.0 machine g m with
      | Ok r ->
          Alcotest.(check bool)
            (app.App.app_name ^ " runs")
            true (r.Exec.makespan > 0.0)
      | Error e -> Alcotest.fail (app.App.app_name ^ ": " ^ Placement.error_to_string e))
    App.all

let test_custom_mappings_valid () =
  List.iter
    (fun app ->
      let machine = shepard () in
      List.iter
        (fun input ->
          let g = app.App.graph ~nodes:1 ~input in
          let m = app.App.custom g machine in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s custom valid" app.App.app_name input)
            true
            (Mapping.is_valid g machine m))
        (app.App.inputs ~nodes:1))
    App.all

let test_inputs_weak_scale () =
  (* per-node input lists exist for several node counts *)
  List.iter
    (fun app ->
      List.iter
        (fun nodes ->
          Alcotest.(check bool)
            (Printf.sprintf "%s has inputs at %d nodes" app.App.app_name nodes)
            true
            (List.length (app.App.inputs ~nodes) > 0))
        [ 1; 2; 4; 8 ])
    App.all

let test_bad_inputs_rejected () =
  List.iter
    (fun (app, bad) ->
      match app.App.graph ~nodes:1 ~input:bad with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail (app.App.app_name ^ " accepted garbage"))
    [ (App.circuit, "x"); (App.stencil, "500"); (App.pennant, "320"); (App.htr, "8x8");
      (App.maestro, "zzz") ]

let test_find () =
  Alcotest.(check bool) "finds pennant" true (App.find "pennant" <> None);
  Alcotest.(check bool) "case-insensitive" true (App.find "HTR" <> None);
  Alcotest.(check bool) "unknown" true (App.find "doom" = None)

let test_parse_helpers () =
  Alcotest.(check (option (pair int int))) "pair" (Some (50, 200))
    (App_util.parse_pair ~tag1:'n' ~tag2:'w' "n50w200");
  Alcotest.(check (option (pair int int))) "pair bad" None
    (App_util.parse_pair ~tag1:'n' ~tag2:'w' "w50n200");
  Alcotest.(check (option (pair int int))) "cross" (Some (500, 250)) (App_util.parse_cross "500x250");
  Alcotest.(check bool) "xyz" true (App_util.parse_xyz "8x16y9z" = Some (8, 16, 9));
  Alcotest.(check bool) "xyz bad" true (App_util.parse_xyz "8x16y9" = None)

let test_pennant_bytes_per_zone () =
  (* graph_of_zones' resident footprint must match bytes_per_zone *)
  let zones = 10_000.0 in
  let g = Pennant.graph_of_zones ~nodes:1 ~zones in
  let per_array_totals = Hashtbl.create 32 in
  List.iter
    (fun (c : Graph.collection) ->
      let array = App_util.arg_array_name c in
      if not (Hashtbl.mem per_array_totals array) then
        Hashtbl.replace per_array_totals array
          (c.Graph.bytes *. float_of_int (Graph.task g c.Graph.owner).Graph.group_size))
    (Graph.collections g);
  let total = Hashtbl.fold (fun _ b acc -> acc +. b) per_array_totals 0.0 in
  let expected = Pennant.bytes_per_zone *. zones in
  Alcotest.(check bool)
    (Printf.sprintf "total %.3g ~ expected %.3g" total expected)
    true
    (abs_float (total -. expected) /. expected < 0.01)

let test_maestro_hf_fills_fb () =
  (* the HF-alone graph's FB residency should be ~hf_frac of capacity *)
  let machine = Presets.lassen ~nodes:1 in
  let g = Maestro.graph ~nodes:1 ~n_lf:0 ~resolution:16 () in
  let m = Mapping.default_start g machine in
  match Placement.resolve machine g m with
  | Ok p ->
      let fb_total =
        Array.fold_left
          (fun acc (mem : Machine.memory) ->
            if Kinds.equal_mem mem.Machine.mkind Kinds.Frame_buffer then
              acc +. Placement.bytes_resident p mem
            else acc)
          0.0 machine.Machine.memories
      in
      let capacity = 4.0 *. 16e9 in
      let frac = fb_total /. capacity in
      Alcotest.(check bool)
        (Printf.sprintf "fb fill %.2f in [0.7, 1.0]" frac)
        true
        (frac > 0.7 && frac <= 1.0)
  | Error e -> Alcotest.fail (Placement.error_to_string e)

let test_maestro_lf_in_fb_ooms () =
  (* mapping LF collections to FB on top of the HF data must exceed
     capacity: the scenario that forces the §5.1 trade-off *)
  let machine = Presets.lassen ~nodes:1 in
  let g = Maestro.graph ~nodes:1 ~n_lf:64 ~resolution:32 () in
  let base = Mapping.default_start g machine in
  match Placement.resolve machine g base with
  | Error (Placement.Out_of_memory _) -> ()
  | Ok _ -> Alcotest.fail "expected OOM with LF data in FB"
  | Error (Placement.Invalid_mapping r) -> Alcotest.fail r

let test_maestro_strategies_run () =
  let machine = Presets.lassen ~nodes:1 in
  let g = Maestro.graph ~nodes:1 ~n_lf:8 ~resolution:16 () in
  List.iter
    (fun (name, strat) ->
      match Exec.run ~noise_sigma:0.0 machine g (strat g machine) with
      | Ok r -> Alcotest.(check bool) (name ^ " runs") true (r.Exec.makespan > 0.0)
      | Error e -> Alcotest.fail (name ^ ": " ^ Placement.error_to_string e))
    [ ("cpu+sys", Maestro.lf_cpu_sys); ("gpu+zc", Maestro.lf_gpu_zc) ]

let test_maestro_degradation_monotone () =
  (* more LF samples cannot make the ensemble finish earlier *)
  let machine = Presets.lassen ~nodes:1 in
  let time n_lf =
    let g = Maestro.graph ~nodes:1 ~n_lf ~resolution:16 () in
    match Exec.run ~noise_sigma:0.0 machine g (Maestro.lf_gpu_zc g machine) with
    | Ok r -> r.Exec.per_iteration
    | Error e -> Alcotest.fail (Placement.error_to_string e)
  in
  let t0 = time 0 and t8 = time 8 and t64 = time 64 in
  Alcotest.(check bool) "8 lfs >= alone" true (t8 >= t0 -. 1e-12);
  Alcotest.(check bool) "64 lfs >= 8 lfs" true (t64 >= t8 -. 1e-12)

let suite =
  [
    Alcotest.test_case "figure 5 counts" `Quick test_figure5_counts;
    Alcotest.test_case "graphs run" `Quick test_all_graphs_run_under_default;
    Alcotest.test_case "custom mappings valid" `Quick test_custom_mappings_valid;
    Alcotest.test_case "inputs weak scale" `Quick test_inputs_weak_scale;
    Alcotest.test_case "bad inputs" `Quick test_bad_inputs_rejected;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "parse helpers" `Quick test_parse_helpers;
    Alcotest.test_case "pennant bytes/zone" `Quick test_pennant_bytes_per_zone;
    Alcotest.test_case "maestro hf fills fb" `Quick test_maestro_hf_fills_fb;
    Alcotest.test_case "maestro lf fb ooms" `Quick test_maestro_lf_in_fb_ooms;
    Alcotest.test_case "maestro strategies" `Quick test_maestro_strategies_run;
    Alcotest.test_case "maestro monotone" `Quick test_maestro_degradation_monotone;
  ]
