(* Cross-module invariants exercised on the real applications at small
   scale — the "does the whole system hold together" layer. *)

let shepard = lazy (Presets.shepard ~nodes:1)

let test_automap_never_loses_to_default () =
  (* noise-free: the default mapping is CCD's starting point, so the
     search result can never be slower *)
  List.iter
    (fun (app, input) ->
      let machine = Lazy.force shepard in
      let g = app.App.graph ~nodes:1 ~input in
      let ev = Evaluator.create ~runs:1 ~noise_sigma:0.0 ~seed:0 machine g in
      let p0 = Evaluator.evaluate ev (Mapping.default_start g machine) in
      let _, p = Ccd.search ev in
      Alcotest.(check bool)
        (Printf.sprintf "%s %s: %.4g <= %.4g" app.App.app_name input p p0)
        true (p <= p0 +. 1e-12))
    [ (App.circuit, "n50w200"); (App.stencil, "1000x1000"); (App.htr, "8x8y9z") ]

let test_search_counts_ordering () =
  (* §5.3's structural relations: OT suggests far more than CCD, CCD
     more than CD; all evaluate fewer than they suggest *)
  let machine = Lazy.force shepard in
  let g = App.circuit.App.graph ~nodes:1 ~input:"n100w400" in
  let run algo =
    let ev = Evaluator.create ~runs:2 ~noise_sigma:0.005 ~seed:4 machine g in
    (match algo with
    | `Cd -> ignore (Cd.search ev)
    | `Ccd -> ignore (Ccd.search ev)
    | `Ot ->
        ignore
          (Ensemble.search
             ~config:{ Ensemble.default_config with max_suggestions = 2000; seed = 6 }
             ev));
    (Evaluator.suggested ev, Evaluator.evaluated ev)
  in
  let s_cd, e_cd = run `Cd in
  let s_ccd, e_ccd = run `Ccd in
  let s_ot, e_ot = run `Ot in
  Alcotest.(check bool) "ccd suggests more than cd" true (s_ccd > s_cd);
  Alcotest.(check bool) "ot suggests most" true (s_ot > s_ccd);
  Alcotest.(check bool) "cd dedups" true (e_cd <= s_cd);
  Alcotest.(check bool) "ccd dedups" true (e_ccd < s_ccd);
  Alcotest.(check bool) "ot evaluates a tiny fraction" true
    (float_of_int e_ot /. float_of_int s_ot < 0.5)

let test_memory_constrained_pennant () =
  (* Figure 8's mechanism: an input slightly over FB capacity OOMs the
     default mapping, the all-ZC strategy runs but is slow, and CCD
     finds something strictly faster than all-ZC *)
  let machine = Lazy.force shepard in
  let fb = Machine.mem_kind_capacity machine Kinds.Frame_buffer in
  let zones = 1.013 *. fb /. Pennant.bytes_per_zone in
  let g = Pennant.graph_of_zones ~nodes:1 ~zones in
  let default = Mapping.default_start g machine in
  (match Placement.resolve machine g default with
  | Error (Placement.Out_of_memory _) -> ()
  | _ -> Alcotest.fail "default should OOM");
  let all_zc =
    Mapping.make g
      ~distribute:(fun _ -> true)
      ~proc:(fun t -> if Graph.has_variant t Kinds.Gpu then Kinds.Gpu else Kinds.Cpu)
      ~mem:(fun _ -> Kinds.Zero_copy)
  in
  let ev = Evaluator.create ~runs:2 ~noise_sigma:0.0 ~seed:0 machine g in
  let p_zc = Evaluator.evaluate ev all_zc in
  Alcotest.(check bool) "all-zc runs" true (Float.is_finite p_zc);
  let _, p_ccd = Ccd.search ev in
  Alcotest.(check bool)
    (Printf.sprintf "ccd %.4g at least 2x faster than all-zc %.4g" p_ccd p_zc)
    true
    (p_ccd *. 2.0 < p_zc)

let test_maestro_automap_best_or_tied () =
  (* Figure 7's claim: AutoMap matches or beats both standard LF
     strategies *)
  let machine = Presets.lassen ~nodes:1 in
  let g = Maestro.graph ~nodes:1 ~n_lf:16 ~resolution:16 () in
  let measure m =
    match Exec.run ~noise_sigma:0.0 machine g m with
    | Ok r -> r.Exec.per_iteration
    | Error e -> Alcotest.fail (Placement.error_to_string e)
  in
  let p_cpu = measure (Maestro.lf_cpu_sys g machine) in
  let p_zc = measure (Maestro.lf_gpu_zc g machine) in
  let ev = Evaluator.create ~runs:1 ~noise_sigma:0.0 ~seed:0 machine g in
  let start = Maestro.lf_gpu_zc g machine in
  let _, p_am = Ccd.search ~start ev in
  Alcotest.(check bool)
    (Printf.sprintf "automap %.4g <= min(cpu %.4g, zc %.4g)" p_am p_cpu p_zc)
    true
    (p_am <= Float.min p_cpu p_zc +. 1e-12)

let test_weak_scaling_consistency () =
  (* the same per-node workload on 2 nodes should take a similar time
     (within 2x — halo traffic only) under the default mapping *)
  let t nodes input =
    let machine = Presets.shepard ~nodes in
    let g = App.stencil.App.graph ~nodes ~input in
    match Exec.run ~noise_sigma:0.0 machine g (Mapping.default_start g machine) with
    | Ok r -> r.Exec.per_iteration
    | Error e -> Alcotest.fail (Placement.error_to_string e)
  in
  let t1 = t 1 "2000x2000" in
  let t2 = t 2 "4000x2000" in
  Alcotest.(check bool)
    (Printf.sprintf "t2 %.4g within 2x of t1 %.4g" t2 t1)
    true
    (t2 < 2.0 *. t1 && t2 > 0.5 *. t1)

let test_driver_full_protocol_on_app () =
  let machine = Lazy.force shepard in
  let g = App.stencil.App.graph ~nodes:1 ~input:"500x500" in
  let r =
    Driver.run ~runs:3 ~final_top:5 ~final_runs:7 ~noise_sigma:0.01 ~seed:1
      (Driver.Ccd { rotations = 5 }) machine g
  in
  Alcotest.(check bool) "perf close to search estimate" true
    (abs_float (r.Driver.perf -. r.Driver.search_perf) /. r.Driver.search_perf < 0.2);
  Alcotest.(check bool) "ccd useful fraction high (>90%)" true
    (r.Driver.eval_time_fraction > 0.9)

let suite =
  [
    Alcotest.test_case "automap >= default" `Slow test_automap_never_loses_to_default;
    Alcotest.test_case "search counts" `Slow test_search_counts_ordering;
    Alcotest.test_case "memory constrained" `Slow test_memory_constrained_pennant;
    Alcotest.test_case "maestro best" `Slow test_maestro_automap_best_or_tied;
    Alcotest.test_case "weak scaling" `Quick test_weak_scaling_consistency;
    Alcotest.test_case "driver on app" `Slow test_driver_full_protocol_on_app;
  ]
