(* QCheck generator for random (but always well-formed) workloads,
   used to fuzz the whole pipeline: builder validation, codecs,
   placement, the simulator and the search algorithms. *)

open QCheck

let array_names = [ "alpha"; "beta"; "gamma"; "delta"; "eps" ]

type spec = {
  n_arrays : int;
  n_tasks : int;
  seed : int;
  iterations : int;
  group_size : int;
}

let spec_gen =
  Gen.map5
    (fun n_arrays n_tasks seed iterations group_size ->
      { n_arrays; n_tasks; seed; iterations; group_size })
    (Gen.int_range 1 5) (Gen.int_range 1 6) (Gen.int_range 0 1_000_000)
    (Gen.int_range 1 3) (Gen.int_range 1 6)

(* Build a workload deterministically from the spec via our own Rng so
   shrinking stays meaningful on the integer fields. *)
let build spec =
  let rng = Rng.create spec.seed in
  let arrays =
    List.init spec.n_arrays (fun i ->
        Workload.array_decl
          ~name:(List.nth array_names i)
          ~elems:(float_of_int (1000 + Rng.int rng 100_000))
          ~comps:(1 + Rng.int rng 3)
          ~halo_frac:(if Rng.bool rng then 0.1 else 0.0)
          ())
  in
  let tasks =
    List.init spec.n_tasks (fun i ->
        let n_accesses = 1 + Rng.int rng (min 4 spec.n_arrays) in
        (* distinct arrays per task (duplicate accesses are legal but
           make the overlap clique noisy) *)
        let chosen =
          let all = Array.of_list (List.filteri (fun j _ -> j < spec.n_arrays) array_names) in
          Rng.shuffle rng all;
          Array.to_list (Array.sub all 0 (min n_accesses (Array.length all)))
        in
        let accesses =
          List.map
            (fun a ->
              match Rng.int rng 3 with
              | 0 -> Workload.read ~ghosted:(Rng.bool rng) a
              | 1 -> Workload.write a
              | _ -> Workload.read_write a)
            chosen
        in
        Workload.task_decl
          ~name:(Printf.sprintf "task%d" i)
          ~work_elems:(float_of_int (1000 + Rng.int rng 1_000_000))
          ~flops_per_elem:(float_of_int (1 + Rng.int rng 500))
          ~group_size:spec.group_size
          ~gpu_eff:(0.2 +. Rng.float rng 0.8)
          ~cpu_eff:(0.2 +. Rng.float rng 0.8)
          ~accesses ())
  in
  Workload.build
    ~name:(Printf.sprintf "fuzz%d" spec.seed)
    ~iterations:spec.iterations ~arrays ~tasks

let print_spec spec =
  Printf.sprintf "{arrays=%d tasks=%d seed=%d iters=%d group=%d}" spec.n_arrays
    spec.n_tasks spec.seed spec.iterations spec.group_size

let arbitrary_spec = make ~print:print_spec spec_gen

let graph_of_spec = build
