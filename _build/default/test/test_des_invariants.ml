(* Discrete-event-simulator correctness invariants, checked from
   execution traces over random workloads and random valid mappings:

   - exclusivity: a processor executes one task instance at a time, a
     channel carries one copy at a time;
   - causality: no instance of a consumer task starts before some
     instance of each of its (non-carried) producers has finished;
   - accounting: per-task busy time in the result equals the sum of
     that task's trace durations. *)

let machine = lazy (Presets.testbed ~nodes:2)

let traced spec =
  let g = Gen.graph_of_spec spec in
  let machine = Lazy.force machine in
  let space = Space.make g machine in
  let m = Space.random_mapping space (Rng.create (spec.Gen.seed + 7)) in
  let collector = Trace.create () in
  match Exec.run ~noise_sigma:0.02 ~seed:spec.Gen.seed ~trace:collector machine g m with
  | Ok r -> Some (g, m, collector, r)
  | Error _ -> None (* OOM on the tiny testbed is legal *)

let overlapping a b =
  let open Trace in
  a.start_time +. a.duration > b.start_time +. 1e-12
  && b.start_time +. b.duration > a.start_time +. 1e-12

let prop_resource_exclusivity =
  QCheck.Test.make ~count:40 ~name:"no two events overlap on one resource"
    Gen.arbitrary_spec (fun spec ->
      match traced spec with
      | None -> true
      | Some (_, _, collector, _) ->
          let by_resource = Hashtbl.create 16 in
          List.iter
            (fun e ->
              let l =
                Option.value ~default:[] (Hashtbl.find_opt by_resource e.Trace.resource)
              in
              Hashtbl.replace by_resource e.Trace.resource (e :: l))
            (Trace.entries collector);
          Hashtbl.fold
            (fun _ events ok ->
              ok
              &&
              let rec pairs = function
                | [] -> true
                | e :: rest -> List.for_all (fun e' -> not (overlapping e e')) rest && pairs rest
              in
              pairs events)
            by_resource true)

let prop_causality =
  QCheck.Test.make ~count:40 ~name:"consumers start after a producer finishes"
    Gen.arbitrary_spec (fun spec ->
      match traced spec with
      | None -> true
      | Some (g, _, collector, _) ->
          let task_events name =
            List.filter
              (fun e ->
                e.Trace.kind = Trace.Task_exec
                && String.length e.Trace.label > String.length name
                && String.sub e.Trace.label 0 (String.length name) = name
                && e.Trace.label.[String.length name] = '.')
              (Trace.entries collector)
          in
          List.for_all
            (fun (e : Graph.edge) ->
              e.Graph.carried
              ||
              let src = (Graph.collection g e.Graph.src).Graph.owner in
              let dst = (Graph.collection g e.Graph.dst).Graph.owner in
              if src = dst then true
              else
                let src_name = (Graph.task g src).Graph.tname in
                let dst_name = (Graph.task g dst).Graph.tname in
                match (task_events src_name, task_events dst_name) with
                | [], _ | _, [] -> true
                | src_es, dst_es ->
                    (* the earliest consumer start cannot precede the
                       earliest producer finish *)
                    let first_finish =
                      List.fold_left
                        (fun acc ev -> Float.min acc (ev.Trace.start_time +. ev.Trace.duration))
                        infinity src_es
                    in
                    let first_start =
                      List.fold_left
                        (fun acc ev -> Float.min acc ev.Trace.start_time)
                        infinity dst_es
                    in
                    first_start >= first_finish -. 1e-12)
            g.Graph.edges)

let prop_busy_accounting =
  QCheck.Test.make ~count:40 ~name:"result busy time equals trace durations"
    Gen.arbitrary_spec (fun spec ->
      match traced spec with
      | None -> true
      | Some (_, _, collector, r) ->
          let traced_busy =
            List.fold_left
              (fun acc e ->
                if e.Trace.kind = Trace.Task_exec then acc +. e.Trace.duration else acc)
              0.0 (Trace.entries collector)
          in
          let result_busy = Array.fold_left ( +. ) 0.0 r.Exec.proc_busy in
          abs_float (traced_busy -. result_busy) <= 1e-9 *. Float.max 1.0 result_busy)

let prop_makespan_covers_all_events =
  QCheck.Test.make ~count:40 ~name:"makespan bounds every event"
    Gen.arbitrary_spec (fun spec ->
      match traced spec with
      | None -> true
      | Some (_, _, collector, r) ->
          List.for_all
            (fun e -> e.Trace.start_time +. e.Trace.duration <= r.Exec.makespan +. 1e-9)
            (List.filter (fun e -> e.Trace.kind = Trace.Task_exec) (Trace.entries collector)))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_resource_exclusivity;
      prop_causality;
      prop_busy_accounting;
      prop_makespan_covers_all_events;
    ]
