(* Shared graph fixtures for the test suite. *)

let mb = 1e6

(* producer -> consumer over one array; consumer also reads an input. *)
let pipeline ?(iterations = 1) ?(group_size = 2) () =
  let b = Graph.Builder.create ~iterations ~name:"pipeline" () in
  let t1 =
    Graph.Builder.add_task b ~name:"produce" ~group_size
      ~variants:[ Kinds.Cpu; Kinds.Gpu ] ~flops:1e6 ()
  in
  let out = Graph.Builder.add_arg b ~task:t1 ~name:"produce.data" ~bytes:mb ~mode:Mode.Write in
  let t2 =
    Graph.Builder.add_task b ~name:"consume" ~group_size
      ~variants:[ Kinds.Cpu; Kinds.Gpu ] ~flops:1e6 ()
  in
  let inp = Graph.Builder.add_arg b ~task:t2 ~name:"consume.data" ~bytes:mb ~mode:Mode.Read in
  let aux = Graph.Builder.add_arg b ~task:t2 ~name:"consume.aux" ~bytes:(mb /. 2.0) ~mode:Mode.Read in
  Graph.Builder.add_dep b ~src:out ~dst:inp;
  Graph.Builder.add_overlap b out inp ~bytes:mb;
  ignore aux;
  (Graph.Builder.build b, t1, t2, out, inp)

(* Three tasks sharing one array with halo exchange plus a private array
   each; overlap edges of different weights for pruning tests. *)
let shared_halo ?(iterations = 2) ?(group_size = 4) () =
  let b = Graph.Builder.create ~iterations ~name:"shared_halo" () in
  let add_task name flops =
    Graph.Builder.add_task b ~name ~group_size ~variants:[ Kinds.Cpu; Kinds.Gpu ]
      ~flops ()
  in
  let t1 = add_task "writer" 2e6 in
  let w = Graph.Builder.add_arg b ~task:t1 ~name:"writer.state" ~bytes:(4.0 *. mb) ~mode:Mode.Write in
  let t2 = add_task "reader_a" 1e6 in
  let ra = Graph.Builder.add_arg b ~task:t2 ~name:"reader_a.state" ~bytes:(4.0 *. mb) ~mode:Mode.Read in
  let rpriv = Graph.Builder.add_arg b ~task:t2 ~name:"reader_a.priv" ~bytes:mb ~mode:Mode.Read_write in
  let t3 = add_task "reader_b" 1e6 in
  let rb = Graph.Builder.add_arg b ~task:t3 ~name:"reader_b.state" ~bytes:(4.0 *. mb) ~mode:Mode.Read in
  Graph.Builder.add_dep b ~src:w ~dst:ra ~pattern:(Pattern.halo ~frac:0.1);
  Graph.Builder.add_dep b ~src:w ~dst:rb;
  Graph.Builder.add_overlap b w ra ~bytes:(4.0 *. mb);
  Graph.Builder.add_overlap b w rb ~bytes:(2.0 *. mb);
  Graph.Builder.add_overlap b ra rb ~bytes:mb;
  (Graph.Builder.build b, (t1, t2, t3), (w, ra, rpriv, rb))

(* GPU-only task graph (no CPU variants) for constraint tests. *)
let gpu_only ?(group_size = 2) () =
  let b = Graph.Builder.create ~name:"gpu_only" () in
  let t = Graph.Builder.add_task b ~name:"kernel" ~group_size ~variants:[ Kinds.Gpu ] ~flops:1e6 () in
  let c = Graph.Builder.add_arg b ~task:t ~name:"kernel.buf" ~bytes:mb ~mode:Mode.Read_write in
  (Graph.Builder.build b, t, c)

(* One big array exceeding the testbed FB capacity (1 GB/GPU): 1.5 GB
   per shard with the defaults, which fits the 2 GB ZC pool. *)
let oversized ?(bytes = 3e9) ?(group_size = 2) () =
  let b = Graph.Builder.create ~name:"oversized" () in
  let t = Graph.Builder.add_task b ~name:"big" ~group_size ~variants:[ Kinds.Gpu; Kinds.Cpu ] ~flops:1e6 () in
  let c =
    Graph.Builder.add_arg b ~task:t ~name:"big.data"
      ~bytes:(bytes /. float_of_int group_size)
      ~mode:Mode.Read_write
  in
  (Graph.Builder.build b, t, c)

let default_machine () = Presets.testbed ~nodes:2
