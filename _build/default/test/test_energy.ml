let machine () = Presets.testbed ~nodes:1

let run_with mapping g =
  match Exec.run ~noise_sigma:0.0 (machine ()) g mapping with
  | Ok r -> r
  | Error e -> Alcotest.fail (Placement.error_to_string e)

let test_energy_positive () =
  let g, _, _, _, _ = Fixtures.pipeline ~group_size:1 () in
  let r = run_with (Mapping.default_start g (machine ())) g in
  let j = Energy.joules (machine ()) Energy.default_power r in
  Alcotest.(check bool) "positive" true (j > 0.0)

let test_idle_floor () =
  (* even a nearly-empty run pays idle power for the whole machine *)
  let g, _, _, _, _ = Fixtures.pipeline ~group_size:1 () in
  let r = run_with (Mapping.default_start g (machine ())) g in
  let pm = Energy.default_power in
  let idle_floor =
    r.Exec.makespan *. ((2.0 *. pm.Energy.cpu_idle_w) +. pm.Energy.gpu_idle_w)
  in
  Alcotest.(check bool) "at least idle floor" true
    (Energy.joules (machine ()) pm r >= idle_floor -. 1e-12)

let test_busy_power_counts () =
  let g, _, _, _, _ = Fixtures.pipeline ~group_size:1 () in
  let r = run_with (Mapping.default_start g (machine ())) g in
  let pm = Energy.default_power in
  let cheap = { pm with Energy.gpu_busy_w = pm.Energy.gpu_idle_w } in
  Alcotest.(check bool) "lower busy power, lower energy" true
    (Energy.joules (machine ()) cheap r < Energy.joules (machine ()) pm r)

let test_traffic_energy () =
  let g, _, _, _, inp = Fixtures.pipeline () in
  let machine = Fixtures.default_machine () in
  let base = Mapping.default_start g machine in
  let with_copies = Mapping.set_mem base inp Kinds.Zero_copy in
  let r0 =
    match Exec.run ~noise_sigma:0.0 machine g base with Ok r -> r | Error _ -> assert false
  in
  let r1 =
    match Exec.run ~noise_sigma:0.0 machine g with_copies with
    | Ok r -> r
    | Error _ -> assert false
  in
  (* compare only the traffic term: same power model with zero
     compute/idle power isolates it *)
  let pm =
    { Energy.default_power with cpu_busy_w = 0.; cpu_idle_w = 0.; gpu_busy_w = 0.; gpu_idle_w = 0. }
  in
  Alcotest.(check (float 0.0)) "no copies, no traffic energy" 0.0
    (Energy.joules machine pm r0);
  Alcotest.(check bool) "copies cost energy" true (Energy.joules machine pm r1 > 0.0)

let test_per_iteration_scaling () =
  let g, _, _, _, _ = Fixtures.pipeline ~iterations:4 ~group_size:1 () in
  let r = run_with (Mapping.default_start g (machine ())) g in
  let pm = Energy.default_power in
  let total = Energy.joules (machine ()) pm r in
  let per_iter = Energy.joules_per_iteration (machine ()) pm r in
  Alcotest.(check bool) "per-iteration = total/iters" true
    (abs_float ((per_iter *. 4.0) -. total) /. total < 1e-9)

let test_edp () =
  let g, _, _, _, _ = Fixtures.pipeline ~group_size:1 () in
  let r = run_with (Mapping.default_start g (machine ())) g in
  let pm = Energy.default_power in
  let edp = Energy.edp_per_iteration (machine ()) pm r in
  Alcotest.(check bool) "edp = E x t" true
    (abs_float (edp -. (Energy.joules_per_iteration (machine ()) pm r *. r.Exec.per_iteration))
     < 1e-15)

let test_energy_objective_in_search () =
  (* the evaluator accepts an energy objective and the search returns a
     valid mapping under it *)
  let g, _, _ = Fixtures.shared_halo () in
  let machine = Fixtures.default_machine () in
  let objective m r = Energy.joules_per_iteration m Energy.default_power r in
  let ev = Evaluator.create ~runs:2 ~noise_sigma:0.0 ~seed:0 ~objective machine g in
  let best, j = Ccd.search ev in
  Alcotest.(check bool) "valid" true (Mapping.is_valid g machine best);
  Alcotest.(check bool) "finite joules" true (Float.is_finite j && j > 0.0);
  (* the search never does worse than the default under its objective *)
  let p0 = Evaluator.evaluate ev (Mapping.default_start g machine) in
  Alcotest.(check bool) "no worse than default" true (j <= p0)

let suite =
  [
    Alcotest.test_case "positive" `Quick test_energy_positive;
    Alcotest.test_case "idle floor" `Quick test_idle_floor;
    Alcotest.test_case "busy power" `Quick test_busy_power_counts;
    Alcotest.test_case "traffic energy" `Quick test_traffic_energy;
    Alcotest.test_case "per-iteration" `Quick test_per_iteration_scaling;
    Alcotest.test_case "edp" `Quick test_edp;
    Alcotest.test_case "energy objective" `Quick test_energy_objective_in_search;
  ]
