let machine () = Fixtures.default_machine ()

let run_exn ?noise_sigma ?seed ?fallback ?iterations g m mapping =
  match Exec.run ?noise_sigma ?seed ?fallback ?iterations m g mapping with
  | Ok r -> r
  | Error e -> Alcotest.fail (Placement.error_to_string e)

let test_runs_and_positive () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  let r = run_exn ~noise_sigma:0.0 g (machine ()) m in
  Alcotest.(check bool) "positive makespan" true (r.Exec.makespan > 0.0);
  Alcotest.(check bool) "per-iteration = makespan for 1 iter" true
    (r.Exec.per_iteration = r.Exec.makespan)

let test_deterministic () =
  let g, _, _ = Fixtures.shared_halo () in
  let m = Mapping.default_start g (machine ()) in
  let a = run_exn ~noise_sigma:0.03 ~seed:5 g (machine ()) m in
  let b = run_exn ~noise_sigma:0.03 ~seed:5 g (machine ()) m in
  Alcotest.(check (float 0.0)) "same seed same result" a.Exec.makespan b.Exec.makespan;
  let c = run_exn ~noise_sigma:0.03 ~seed:6 g (machine ()) m in
  Alcotest.(check bool) "different seed differs" true (a.Exec.makespan <> c.Exec.makespan)

let test_noise_free_is_stable () =
  let g, _, _ = Fixtures.shared_halo () in
  let m = Mapping.default_start g (machine ()) in
  let a = run_exn ~noise_sigma:0.0 ~seed:1 g (machine ()) m in
  let b = run_exn ~noise_sigma:0.0 ~seed:99 g (machine ()) m in
  Alcotest.(check (float 0.0)) "seed irrelevant without noise" a.Exec.makespan b.Exec.makespan

let test_dependencies_respected () =
  (* consumer cannot start before producer: makespan of the pipeline
     must be at least the sum of both tasks' compute on one shard *)
  let g, t1, t2, _, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  let r = run_exn ~noise_sigma:0.0 g (machine ()) m in
  let per_task tid = r.Exec.task_times.(tid) /. 2.0 (* 2 shards *) in
  Alcotest.(check bool) "makespan covers chain" true
    (r.Exec.makespan +. 1e-12 >= per_task t1 +. per_task t2)

let test_same_memory_no_copies () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  let r = run_exn ~noise_sigma:0.0 g (machine ()) m in
  (* producer and consumer both in FB of the same GPU: no data moves *)
  Alcotest.(check int) "no copies" 0 r.Exec.n_copies;
  Alcotest.(check (float 0.0)) "no bytes" 0.0 r.Exec.bytes_moved

let test_cross_memory_copies () =
  let g, _, t2, _, inp = Fixtures.pipeline () in
  let base = Mapping.default_start g (machine ()) in
  let m = Mapping.set_mem base inp Kinds.Zero_copy in
  let r = run_exn ~noise_sigma:0.0 g (machine ()) m in
  Alcotest.(check bool) "copies happen" true (r.Exec.n_copies > 0);
  Alcotest.(check bool) "bytes move" true (r.Exec.bytes_moved > 0.0);
  let r0 = run_exn ~noise_sigma:0.0 g (machine ()) base in
  Alcotest.(check bool) "copies slow execution" true (r.Exec.makespan > r0.Exec.makespan);
  ignore t2

let test_cost_monotone_in_flops () =
  let build flops =
    let b = Graph.Builder.create ~name:"flops" () in
    let t = Graph.Builder.add_task b ~name:"t" ~group_size:2 ~variants:[ Kinds.Gpu ] ~flops () in
    let _ = Graph.Builder.add_arg b ~task:t ~name:"t.x" ~bytes:1e6 ~mode:Mode.Read_write in
    Graph.Builder.build b
  in
  let run g =
    (run_exn ~noise_sigma:0.0 g (machine ()) (Mapping.default_start g (machine ()))).Exec.makespan
  in
  Alcotest.(check bool) "more flops, longer" true (run (build 1e12) > run (build 1e9))

let test_iterations_scale () =
  let g1, _, _, _, _ = Fixtures.pipeline ~iterations:1 () in
  let m = Mapping.default_start g1 (machine ()) in
  let r1 = run_exn ~noise_sigma:0.0 g1 (machine ()) m in
  let r4 = run_exn ~noise_sigma:0.0 ~iterations:4 g1 (machine ()) m in
  Alcotest.(check bool) "4 iterations take longer" true (r4.Exec.makespan > r1.Exec.makespan);
  Alcotest.(check bool) "but pipelining keeps < 4x" true
    (r4.Exec.makespan <= 4.0 *. r1.Exec.makespan +. 1e-9)

let test_carried_edge_costs_cross_iteration_copy () =
  (* writer (GPU/FB) feeds reader; reader's output feeds next
     iteration's writer via a carried edge.  If the reader is on CPU,
     the carried data crosses PCIe every iteration. *)
  let build () =
    let b = Graph.Builder.create ~iterations:4 ~name:"carried_cost" () in
    let t1 = Graph.Builder.add_task b ~name:"w" ~group_size:1 ~variants:[ Kinds.Cpu; Kinds.Gpu ] ~flops:1e6 () in
    let c1 = Graph.Builder.add_arg b ~task:t1 ~name:"w.x" ~bytes:8e6 ~mode:Mode.Read_write in
    let t2 = Graph.Builder.add_task b ~name:"r" ~group_size:1 ~variants:[ Kinds.Cpu; Kinds.Gpu ] ~flops:1e6 () in
    let c2 = Graph.Builder.add_arg b ~task:t2 ~name:"r.x" ~bytes:8e6 ~mode:Mode.Read_write in
    Graph.Builder.add_dep b ~src:c1 ~dst:c2;
    Graph.Builder.add_dep b ~src:c2 ~dst:c1 ~carried:true;
    (Graph.Builder.build b, t2, c2)
  in
  let g, t2, c2 = build () in
  let machine = Presets.testbed ~nodes:1 in
  let all_gpu = Mapping.default_start g machine in
  let split =
    Mapping.set_mem (Mapping.set_proc all_gpu t2 Kinds.Cpu) c2 Kinds.System
  in
  let rg = run_exn ~noise_sigma:0.0 g machine all_gpu in
  let rs = run_exn ~noise_sigma:0.0 g machine split in
  Alcotest.(check int) "no copies all-GPU" 0 rg.Exec.n_copies;
  (* split mapping: FB->SYS each iteration and SYS->FB back (carried) *)
  Alcotest.(check bool) "split mapping moves data every iteration" true
    (rs.Exec.n_copies >= 7);
  Alcotest.(check bool) "ping-pong is slower" true (rs.Exec.makespan > rg.Exec.makespan)

let test_halo_pattern_neighbour_traffic () =
  (* distributed halo consumer on 2 nodes: neighbour ghost regions cross
     the network even when everything shares a memory kind *)
  let g, _, _ = Fixtures.shared_halo ~iterations:1 () in
  let m = Mapping.default_start g (machine ()) in
  let r = run_exn ~noise_sigma:0.0 g (machine ()) m in
  Alcotest.(check bool) "halo copies exist" true (r.Exec.n_copies > 0)

let test_oom_propagates () =
  let g, _, _ = Fixtures.oversized () in
  let m = Mapping.default_start g (machine ()) in
  match Exec.run ~noise_sigma:0.0 (machine ()) g m with
  | Error (Placement.Out_of_memory _) -> ()
  | Error (Placement.Invalid_mapping r) -> Alcotest.fail r
  | Ok _ -> Alcotest.fail "expected OOM"

let test_fallback_runs () =
  let g, _, _ = Fixtures.oversized () in
  let m = Mapping.default_start g (machine ()) in
  let r = run_exn ~noise_sigma:0.0 ~fallback:true g (machine ()) m in
  Alcotest.(check bool) "demotions reported" true (r.Exec.demotions > 0)

let test_profile_shape () =
  let g, t1, t2, _, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  let p = Exec.profile (machine ()) g m in
  Alcotest.(check int) "entry per task" 2 (List.length p);
  List.iter (fun (_, s) -> Alcotest.(check bool) "positive" true (s > 0.0)) p;
  ignore (t1, t2)

let test_leader_slower_than_distributed () =
  (* big parallel work on 1 vs 2 nodes *)
  let g, (t1, t2, t3), _ = Fixtures.shared_halo ~iterations:1 ~group_size:8 () in
  let base = Mapping.default_start g (machine ()) in
  let leader =
    List.fold_left (fun m tid -> Mapping.set_distribute m tid false) base [ t1; t2; t3 ]
  in
  let rd = run_exn ~noise_sigma:0.0 g (machine ()) base in
  let rl = run_exn ~noise_sigma:0.0 g (machine ()) leader in
  Alcotest.(check bool) "leader-only is slower" true (rl.Exec.makespan > rd.Exec.makespan)

let prop_noise_bounded =
  QCheck.Test.make ~name:"noisy makespans stay within a plausible band"
    QCheck.(int_bound 1000)
    (fun seed ->
      let g, _, _ = Fixtures.shared_halo () in
      let machine = Fixtures.default_machine () in
      let m = Mapping.default_start g machine in
      let base =
        match Exec.run ~noise_sigma:0.0 machine g m with Ok r -> r.Exec.makespan | Error _ -> 0.0
      in
      match Exec.run ~noise_sigma:0.02 ~seed machine g m with
      | Ok r -> r.Exec.makespan > 0.8 *. base && r.Exec.makespan < 1.25 *. base
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "runs" `Quick test_runs_and_positive;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "noise-free stable" `Quick test_noise_free_is_stable;
    Alcotest.test_case "dependencies respected" `Quick test_dependencies_respected;
    Alcotest.test_case "no copies same memory" `Quick test_same_memory_no_copies;
    Alcotest.test_case "cross-memory copies" `Quick test_cross_memory_copies;
    Alcotest.test_case "cost monotone in flops" `Quick test_cost_monotone_in_flops;
    Alcotest.test_case "iterations scale" `Quick test_iterations_scale;
    Alcotest.test_case "carried-edge ping-pong" `Quick test_carried_edge_costs_cross_iteration_copy;
    Alcotest.test_case "halo traffic" `Quick test_halo_pattern_neighbour_traffic;
    Alcotest.test_case "oom propagates" `Quick test_oom_propagates;
    Alcotest.test_case "fallback runs" `Quick test_fallback_runs;
    Alcotest.test_case "profile shape" `Quick test_profile_shape;
    Alcotest.test_case "leader slower" `Quick test_leader_slower_than_distributed;
    QCheck_alcotest.to_alcotest prop_noise_bounded;
  ]
