let machine () = Presets.shepard ~nodes:1

let test_basic_run () =
  let g = App.circuit.App.graph ~nodes:1 ~input:"n100w400" in
  let r = Online.run ~seed:0 ~total_iterations:5_000 (machine ()) g in
  Alcotest.(check bool) "default total positive" true (r.Online.default_total > 0.0);
  Alcotest.(check bool) "tuned total positive" true (r.Online.tuned_total > 0.0);
  Alcotest.(check bool) "search time within tuned total" true
    (r.Online.search_time <= r.Online.tuned_total +. 1e-9);
  Alcotest.(check bool) "iterations spent bounded" true
    (r.Online.iterations_spent >= 0 && r.Online.iterations_spent <= 5_000);
  Alcotest.(check bool) "best mapping valid" true
    (Mapping.is_valid g (machine ()) r.Online.best)

let test_long_jobs_pay_back () =
  (* on an app where tuning helps a lot, a long job must come out ahead *)
  let g = App.circuit.App.graph ~nodes:1 ~input:"n100w400" in
  let r = Online.run ~seed:0 ~search_fraction:0.1 ~total_iterations:50_000 (machine ()) g in
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.2f > 1.2" r.Online.speedup)
    true (r.Online.speedup > 1.2)

let test_search_fraction_bounds_inspector () =
  let g = App.circuit.App.graph ~nodes:1 ~input:"n100w400" in
  let r = Online.run ~seed:0 ~search_fraction:0.05 ~total_iterations:10_000 (machine ()) g in
  (* the inspector may not exceed its share by more than one evaluation *)
  Alcotest.(check bool) "inspector share respected" true
    (r.Online.search_time <= 0.1 *. r.Online.default_total)

let test_validation () =
  let g = App.circuit.App.graph ~nodes:1 ~input:"n100w400" in
  Alcotest.check_raises "bad iterations"
    (Invalid_argument "Online.run: total_iterations must be positive") (fun () ->
      ignore (Online.run ~total_iterations:0 (machine ()) g));
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Online.run: search_fraction must be in (0,1)") (fun () ->
      ignore (Online.run ~search_fraction:1.5 ~total_iterations:10 (machine ()) g))

let suite =
  [
    Alcotest.test_case "basic run" `Quick test_basic_run;
    Alcotest.test_case "long jobs pay back" `Quick test_long_jobs_pay_back;
    Alcotest.test_case "inspector bounded" `Quick test_search_fraction_bounds_inspector;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
