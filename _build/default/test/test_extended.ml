(* The extended search space: group-task distribution strategies
   (blocked vs cyclic across nodes), §3.2's flagged future work. *)

let machine () = Fixtures.default_machine ()

let test_default_is_blocked () =
  let g, t1, _, _, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  Alcotest.(check bool) "blocked by default" true
    (Mapping.strategy_of m t1 = Mapping.Blocked)

let test_set_strategy_functional () =
  let g, t1, _, _, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  let m2 = Mapping.set_strategy m t1 Mapping.Cyclic in
  Alcotest.(check bool) "original unchanged" true (Mapping.strategy_of m t1 = Mapping.Blocked);
  Alcotest.(check bool) "copy updated" true (Mapping.strategy_of m2 t1 = Mapping.Cyclic);
  Alcotest.(check bool) "key differs" false
    (String.equal (Mapping.canonical_key m) (Mapping.canonical_key m2));
  Alcotest.(check bool) "equal differs" false (Mapping.equal m m2)

let test_codec_round_trips_strategy () =
  let g, t1, _, _, _ = Fixtures.pipeline () in
  let m =
    Mapping.set_strategy (Mapping.default_start g (machine ())) t1 Mapping.Cyclic
  in
  let m' = Codec.round_trip_exn g m in
  Alcotest.(check bool) "cyclic preserved" true (Mapping.strategy_of m' t1 = Mapping.Cyclic);
  Alcotest.(check bool) "full equality" true (Mapping.equal m m')

let test_codec_strategy_optional () =
  (* old mapping files without strategy= still parse (default blocked) *)
  let g, t1, _, _, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  let s =
    Codec.to_string g m
    |> String.split_on_char '\n'
    |> List.map (fun line ->
           String.concat " "
             (List.filter
                (fun tok -> not (Str_helpers.contains tok "strategy="))
                (String.split_on_char ' ' line)))
    |> String.concat "\n"
  in
  match Codec.of_string g s with
  | Ok m' -> Alcotest.(check bool) "blocked default" true (Mapping.strategy_of m' t1 = Mapping.Blocked)
  | Error e -> Alcotest.fail e

let test_cyclic_placement () =
  (* group of 4 over 2 nodes: blocked = 0,0,1,1; cyclic = 0,1,0,1 *)
  let g, (t1, _, _), _ = Fixtures.shared_halo () in
  let base = Mapping.default_start g (machine ()) in
  let nodes_of m =
    match Placement.resolve (machine ()) g m with
    | Ok p ->
        List.init 4 (fun s -> (Placement.processor p ~tid:t1 ~shard:s).Machine.pnode)
    | Error e -> Alcotest.fail (Placement.error_to_string e)
  in
  Alcotest.(check (list int)) "blocked" [ 0; 0; 1; 1 ] (nodes_of base);
  let cyclic =
    List.fold_left (fun m tid -> Mapping.set_strategy m tid Mapping.Cyclic) base
      [ 0; 1; 2 ]
  in
  Alcotest.(check (list int)) "cyclic" [ 0; 1; 0; 1 ] (nodes_of cyclic)

let test_cyclic_increases_halo_traffic () =
  (* with halo deps, cyclic separates neighbouring shards onto
     different nodes, so more bytes cross the network *)
  let g, (t1, t2, t3), _ = Fixtures.shared_halo ~iterations:1 () in
  let base = Mapping.default_start g (machine ()) in
  let cyclic =
    List.fold_left (fun m tid -> Mapping.set_strategy m tid Mapping.Cyclic) base
      [ t1; t2; t3 ]
  in
  let bytes m =
    match Exec.run ~noise_sigma:0.0 (machine ()) g m with
    | Ok r -> r.Exec.channel_bytes.(4) (* "net" *)
    | Error e -> Alcotest.fail (Placement.error_to_string e)
  in
  Alcotest.(check bool)
    (Printf.sprintf "cyclic %.0f > blocked %.0f network bytes" (bytes cyclic) (bytes base))
    true
    (bytes cyclic > bytes base)

let test_space_extended_dims () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let plain = Space.make g (machine ()) in
  let ext = Space.make ~extended:true g (machine ()) in
  Alcotest.(check bool) "plain not extended" false (Space.extended plain);
  let count_strategy s =
    List.length (List.filter (function Space.Strategy _ -> true | _ -> false) (Space.dims s))
  in
  Alcotest.(check int) "no strategy dims" 0 (count_strategy plain);
  Alcotest.(check int) "one per task" 2 (count_strategy ext);
  Alcotest.(check int) "plain distribution choices" 2
    (List.length (Space.distribution_choices plain));
  Alcotest.(check int) "extended distribution choices" 3
    (List.length (Space.distribution_choices ext));
  Alcotest.(check bool) "extended space is larger" true
    (Space.log2_size ext > Space.log2_size plain)

let test_extended_search_explores_strategy () =
  let g, _, _ = Fixtures.shared_halo () in
  let ev = Evaluator.create ~runs:2 ~noise_sigma:0.0 ~seed:1 ~extended:true (machine ()) g in
  let best, p = Ccd.search ev in
  Alcotest.(check bool) "valid" true (Mapping.is_valid g (machine ()) best);
  Alcotest.(check bool) "finite" true (Float.is_finite p);
  (* the extended space includes the plain one, so it can't do worse
     (noise-free, same start) *)
  let ev_plain = Evaluator.create ~runs:2 ~noise_sigma:0.0 ~seed:1 (machine ()) g in
  let _, p_plain = Ccd.search ev_plain in
  Alcotest.(check bool)
    (Printf.sprintf "extended %.4g <= plain %.4g" p p_plain)
    true
    (p <= p_plain +. 1e-12)

let test_extended_random_mapping_valid () =
  let g, _, _ = Fixtures.shared_halo () in
  let space = Space.make ~extended:true g (machine ()) in
  let rng = Rng.create 7 in
  let saw_cyclic = ref false in
  for _ = 1 to 50 do
    let m = Space.random_mapping space rng in
    Alcotest.(check bool) "valid" true (Mapping.is_valid g (machine ()) m);
    for tid = 0 to Graph.n_tasks g - 1 do
      if Mapping.strategy_of m tid = Mapping.Cyclic then saw_cyclic := true
    done
  done;
  Alcotest.(check bool) "cyclic gets sampled" true !saw_cyclic

let suite =
  [
    Alcotest.test_case "default blocked" `Quick test_default_is_blocked;
    Alcotest.test_case "set strategy" `Quick test_set_strategy_functional;
    Alcotest.test_case "codec round trip" `Quick test_codec_round_trips_strategy;
    Alcotest.test_case "codec optional" `Quick test_codec_strategy_optional;
    Alcotest.test_case "cyclic placement" `Quick test_cyclic_placement;
    Alcotest.test_case "cyclic halo traffic" `Quick test_cyclic_increases_halo_traffic;
    Alcotest.test_case "space dims" `Quick test_space_extended_dims;
    Alcotest.test_case "extended search" `Quick test_extended_search_explores_strategy;
    Alcotest.test_case "random valid" `Quick test_extended_random_mapping_valid;
  ]
