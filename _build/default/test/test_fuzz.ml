(* Pipeline fuzzing over random workloads: whatever graph the generator
   produces, every layer must uphold its contract. *)

let machine = lazy (Presets.testbed ~nodes:2)

let prop name f = QCheck.Test.make ~count:60 ~name Gen.arbitrary_spec f

let fuzz_builder_always_valid =
  prop "random workloads build and are well-formed" (fun spec ->
      let g = Gen.graph_of_spec spec in
      Graph.n_tasks g = spec.Gen.n_tasks
      && List.length (Graph.topological_order g) = spec.Gen.n_tasks
      && Graph.total_bytes g > 0.0)

let fuzz_graph_codec_round_trip =
  prop "graph codec round-trips random workloads" (fun spec ->
      let g = Gen.graph_of_spec spec in
      let g' = Graph_codec.round_trip_exn g in
      Graph.n_tasks g' = Graph.n_tasks g
      && Graph.n_collections g' = Graph.n_collections g
      && List.length g'.Graph.edges = List.length g.Graph.edges
      && g'.Graph.overlaps = g.Graph.overlaps)

let fuzz_default_mapping_runs =
  prop "default mapping places and simulates" (fun spec ->
      let g = Gen.graph_of_spec spec in
      let machine = Lazy.force machine in
      match Exec.run ~noise_sigma:0.0 machine g (Mapping.default_start g machine) with
      | Ok r ->
          r.Exec.makespan > 0.0
          && r.Exec.per_iteration *. float_of_int g.Graph.iterations
             <= r.Exec.makespan +. 1e-9
      | Error _ -> false)

let fuzz_placement_respects_capacity =
  prop "placement never exceeds any capacity" (fun spec ->
      let g = Gen.graph_of_spec spec in
      let machine = Lazy.force machine in
      match Placement.resolve machine g (Mapping.default_start g machine) with
      | Error _ -> true (* strict OOM is a legal outcome *)
      | Ok p ->
          Array.for_all
            (fun (mem : Machine.memory) ->
              Placement.bytes_resident p mem <= mem.Machine.capacity +. 1e-6)
            machine.Machine.memories)

let fuzz_mapping_codec_round_trip =
  prop "mapping codec round-trips random mappings" (fun spec ->
      let g = Gen.graph_of_spec spec in
      let machine = Lazy.force machine in
      let space = Space.make ~extended:true g machine in
      let m = Space.random_mapping space (Rng.create spec.Gen.seed) in
      Mapping.equal m (Codec.round_trip_exn g m))

let fuzz_ccd_valid_and_no_worse =
  QCheck.Test.make ~count:20 ~name:"CCD on random workloads: valid, never worse"
    Gen.arbitrary_spec (fun spec ->
      let g = Gen.graph_of_spec spec in
      let machine = Lazy.force machine in
      let ev = Evaluator.create ~runs:1 ~noise_sigma:0.0 ~seed:0 machine g in
      let p0 = Evaluator.evaluate ev (Mapping.default_start g machine) in
      let best, p = Ccd.search ~rotations:3 ev in
      Mapping.is_valid g machine best && p <= p0 +. 1e-12)

let fuzz_colocation_fixed_point =
  QCheck.Test.make ~count:40 ~name:"Algorithm 2 on random workloads: valid fixed point"
    Gen.arbitrary_spec (fun spec ->
      let g = Gen.graph_of_spec spec in
      let machine = Lazy.force machine in
      let overlap = Overlap.of_graph g in
      let space = Space.make g machine in
      let rng = Rng.create (spec.Gen.seed + 1) in
      let start = Space.random_mapping space rng in
      let cols = Graph.collections g in
      let c = (List.nth cols (Rng.int rng (List.length cols))).Graph.cid in
      let t = (Graph.collection g c).Graph.owner in
      (* pick k among the pivot task's actual variants so the repaired
         mapping can be valid at all *)
      match Space.proc_choices space t with
      | [] -> true
      | ks ->
          let k = List.nth ks (Rng.int rng (List.length ks)) in
          let r = Rng.choose_list rng (Kinds.accessible_mem_kinds k) in
          let f' = Mapping.set_mem (Mapping.set_proc start t k) c r in
          let f'' = Colocation.apply g machine ~overlap ~mapping:f' ~t ~c ~k ~r in
          (* the pivot stays where CCD put it *)
          Kinds.equal_mem (Mapping.mem_of f'' c) r
          && Kinds.equal_proc (Mapping.proc_of f'' t) k
          (* every argument is addressable from its task (constraint 1),
             unless the task itself lacks the needed variant — Algorithm 2
             does not consider variants, and the evaluator rejects those *)
          && Array.for_all
               (fun (task : Graph.task) ->
                 List.for_all
                   (fun (arg : Graph.collection) ->
                     Kinds.accessible (Mapping.proc_of f'' task.Graph.tid)
                       (Mapping.mem_of f'' arg.Graph.cid)
                     || not (Graph.has_variant task (Mapping.proc_of f'' task.Graph.tid)))
                   task.Graph.args)
               g.Graph.tasks)

let fuzz_heft_valid =
  prop "HEFT on random workloads yields valid mappings" (fun spec ->
      let g = Gen.graph_of_spec spec in
      let machine = Lazy.force machine in
      Mapping.is_valid g machine (Heft.mapping machine g))

let fuzz_exec_iterations_monotone =
  prop "makespan grows with iterations" (fun spec ->
      let g = Gen.graph_of_spec spec in
      let machine = Lazy.force machine in
      let m = Mapping.default_start g machine in
      let run iters =
        match Exec.run ~noise_sigma:0.0 ~iterations:iters machine g m with
        | Ok r -> r.Exec.makespan
        | Error _ -> 0.0
      in
      run 4 >= run 2 -. 1e-12)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      fuzz_builder_always_valid;
      fuzz_graph_codec_round_trip;
      fuzz_default_mapping_runs;
      fuzz_placement_respects_capacity;
      fuzz_mapping_codec_round_trip;
      fuzz_ccd_valid_and_no_worse;
      fuzz_colocation_fixed_point;
      fuzz_heft_valid;
      fuzz_exec_iterations_monotone;
    ]
