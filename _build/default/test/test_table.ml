let test_alignment () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "longer"; "22" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  (match lines with
  | header :: _ ->
      Alcotest.(check bool) "header contains both columns" true
        (String.length header >= String.length "name    value")
  | [] -> Alcotest.fail "no output");
  Alcotest.(check int) "line count = header + rule + rows" 4 (List.length lines)

let test_ragged_rows () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "1" ];
  Table.add_row t [ "1"; "2"; "3"; "4" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "renders without exception" true (String.length rendered > 0);
  Alcotest.(check bool) "extra cell present" true
    (String.length rendered > 0
    && Option.is_some (String.index_opt rendered '4'))

let test_row_order () =
  let t = Table.create [ "x" ] in
  Table.add_row t [ "first" ];
  Table.add_row t [ "second" ];
  let r = Table.render t in
  let i1 = Str_helpers.find r "first" and i2 = Str_helpers.find r "second" in
  Alcotest.(check bool) "insertion order preserved" true (i1 < i2)

let test_cells () =
  Alcotest.(check string) "cell_f" "1.234" (Table.cell_f 1.2341);
  Alcotest.(check string) "cell_fx" "1.23" (Table.cell_fx 2 1.2341)

let suite =
  [
    Alcotest.test_case "alignment" `Quick test_alignment;
    Alcotest.test_case "ragged rows" `Quick test_ragged_rows;
    Alcotest.test_case "row order" `Quick test_row_order;
    Alcotest.test_case "cells" `Quick test_cells;
  ]
