let machine () = Fixtures.default_machine ()

let test_default_start () =
  let g, t1, _, out, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  Alcotest.(check bool) "distributed" true (Mapping.distribute_of m t1);
  Alcotest.(check bool) "gpu" true (Kinds.equal_proc (Mapping.proc_of m t1) Kinds.Gpu);
  Alcotest.(check bool) "fb" true (Kinds.equal_mem (Mapping.mem_of m out) Kinds.Frame_buffer)

let test_default_start_no_gpu_variant () =
  let b = Graph.Builder.create ~name:"cpuonly" () in
  let t = Graph.Builder.add_task b ~name:"t" ~group_size:1 ~variants:[ Kinds.Cpu ] ~flops:1.0 () in
  let c = Graph.Builder.add_arg b ~task:t ~name:"t.x" ~bytes:8.0 ~mode:Mode.Read_write in
  let g = Graph.Builder.build b in
  let m = Mapping.default_start g (machine ()) in
  Alcotest.(check bool) "cpu" true (Kinds.equal_proc (Mapping.proc_of m t) Kinds.Cpu);
  Alcotest.(check bool) "sys" true (Kinds.equal_mem (Mapping.mem_of m c) Kinds.System)

let test_default_start_gpu_less_machine () =
  let g, t, c = Fixtures.gpu_only () in
  (* gpu-only task on a machine without GPUs: default keeps CPU (and the
     mapping is invalid, which validate must report) *)
  let cpu_machine = Presets.cpu_only ~nodes:1 in
  let m = Mapping.default_start g cpu_machine in
  Alcotest.(check bool) "falls back to cpu" true (Kinds.equal_proc (Mapping.proc_of m t) Kinds.Cpu);
  Alcotest.(check bool) "invalid: no cpu variant" false (Mapping.is_valid g cpu_machine m);
  ignore c

let test_setters_functional () =
  let g, t1, _, out, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  let m2 = Mapping.set_proc m t1 Kinds.Cpu in
  Alcotest.(check bool) "m unchanged" true (Kinds.equal_proc (Mapping.proc_of m t1) Kinds.Gpu);
  Alcotest.(check bool) "m2 updated" true (Kinds.equal_proc (Mapping.proc_of m2 t1) Kinds.Cpu);
  let m3 = Mapping.set_mem m out Kinds.Zero_copy in
  Alcotest.(check bool) "mem updated" true (Kinds.equal_mem (Mapping.mem_of m3 out) Kinds.Zero_copy);
  let m4 = Mapping.set_distribute m t1 false in
  Alcotest.(check bool) "dist updated" false (Mapping.distribute_of m4 t1)

let test_validate_accessibility () =
  let g, t1, _, out, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  (* move the task to CPU while its argument stays in FB: invalid *)
  let bad = Mapping.set_proc m t1 Kinds.Cpu in
  (match Mapping.validate g (machine ()) bad with
  | Error reason ->
      Alcotest.(check bool) "mentions the argument" true
        (Str_helpers.contains reason "produce.data")
  | Ok () -> Alcotest.fail "expected invalid");
  (* fixing the memory restores validity *)
  let fixed = Mapping.set_mem bad out Kinds.Zero_copy in
  Alcotest.(check bool) "fixed valid" true (Mapping.is_valid g (machine ()) fixed)

let test_validate_missing_variant () =
  let g, t, _ = Fixtures.gpu_only () in
  let m = Mapping.default_start g (machine ()) in
  let bad = Mapping.set_proc m t Kinds.Cpu in
  match Mapping.validate g (machine ()) bad with
  | Error reason -> Alcotest.(check bool) "mentions variant" true (Str_helpers.contains reason "variant")
  | Ok () -> Alcotest.fail "expected invalid"

let test_memory_priority () =
  let g, t1, _, out, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  let prio = Mapping.memory_priority m (Graph.task g t1) out in
  Alcotest.(check bool) "chosen first" true (List.hd prio = Kinds.Frame_buffer);
  Alcotest.(check bool) "zc second" true (List.nth prio 1 = Kinds.Zero_copy);
  Alcotest.(check int) "only accessible kinds" 2 (List.length prio)

let test_canonical_key_distinguishes () =
  let g, t1, _, out, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  let variants =
    [
      Mapping.set_proc m t1 Kinds.Cpu;
      Mapping.set_mem m out Kinds.Zero_copy;
      Mapping.set_distribute m t1 false;
    ]
  in
  List.iter
    (fun v ->
      Alcotest.(check bool) "key differs" false
        (String.equal (Mapping.canonical_key m) (Mapping.canonical_key v)))
    variants;
  Alcotest.(check string) "key stable" (Mapping.canonical_key m) (Mapping.canonical_key m)

let test_equal () =
  let g, t1, _, _, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  Alcotest.(check bool) "reflexive" true (Mapping.equal m m);
  Alcotest.(check bool) "differs" false (Mapping.equal m (Mapping.set_proc m t1 Kinds.Cpu))

let test_all_cpu () =
  let g, t1, t2, out, _ = Fixtures.pipeline () in
  let m = Mapping.all_cpu g (machine ()) in
  Alcotest.(check bool) "t1 cpu" true (Kinds.equal_proc (Mapping.proc_of m t1) Kinds.Cpu);
  Alcotest.(check bool) "t2 cpu" true (Kinds.equal_proc (Mapping.proc_of m t2) Kinds.Cpu);
  Alcotest.(check bool) "sys" true (Kinds.equal_mem (Mapping.mem_of m out) Kinds.System);
  Alcotest.(check bool) "valid" true (Mapping.is_valid g (machine ()) m)

let test_pp () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let m = Mapping.default_start g (machine ()) in
  let s = Format.asprintf "%a" (Mapping.pp g) m in
  Alcotest.(check bool) "mentions task" true (Str_helpers.contains s "produce");
  Alcotest.(check bool) "mentions memory" true (Str_helpers.contains s "FB")

let prop_random_mapping_valid =
  QCheck.Test.make ~name:"Space.random_mapping is always valid" QCheck.(int_bound 10_000)
    (fun seed ->
      let g, _, _ = Fixtures.shared_halo () in
      let machine = Fixtures.default_machine () in
      let space = Space.make g machine in
      let m = Space.random_mapping space (Rng.create seed) in
      Mapping.is_valid g machine m)

let prop_unconstrained_sometimes_invalid =
  QCheck.Test.make ~name:"unconstrained sampling produces invalid mappings" QCheck.unit
    (fun () ->
      let g, _, _ = Fixtures.shared_halo () in
      let machine = Fixtures.default_machine () in
      let space = Space.make g machine in
      let rng = Rng.create 1234 in
      let invalid = ref 0 in
      for _ = 1 to 50 do
        if not (Mapping.is_valid g machine (Space.random_unconstrained space rng)) then
          incr invalid
      done;
      !invalid > 0)

let suite =
  [
    Alcotest.test_case "default start" `Quick test_default_start;
    Alcotest.test_case "default no gpu variant" `Quick test_default_start_no_gpu_variant;
    Alcotest.test_case "default gpu-less machine" `Quick test_default_start_gpu_less_machine;
    Alcotest.test_case "functional setters" `Quick test_setters_functional;
    Alcotest.test_case "validate accessibility" `Quick test_validate_accessibility;
    Alcotest.test_case "validate variant" `Quick test_validate_missing_variant;
    Alcotest.test_case "memory priority" `Quick test_memory_priority;
    Alcotest.test_case "canonical key" `Quick test_canonical_key_distinguishes;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "all_cpu" `Quick test_all_cpu;
    Alcotest.test_case "pp" `Quick test_pp;
    QCheck_alcotest.to_alcotest prop_random_mapping_valid;
    QCheck_alcotest.to_alcotest prop_unconstrained_sometimes_invalid;
  ]
