let machine () = Presets.testbed ~nodes:2

let test_kinds_accessibility () =
  Alcotest.(check bool) "cpu-sys" true (Kinds.accessible Kinds.Cpu Kinds.System);
  Alcotest.(check bool) "cpu-zc" true (Kinds.accessible Kinds.Cpu Kinds.Zero_copy);
  Alcotest.(check bool) "cpu-fb" false (Kinds.accessible Kinds.Cpu Kinds.Frame_buffer);
  Alcotest.(check bool) "gpu-fb" true (Kinds.accessible Kinds.Gpu Kinds.Frame_buffer);
  Alcotest.(check bool) "gpu-zc" true (Kinds.accessible Kinds.Gpu Kinds.Zero_copy);
  Alcotest.(check bool) "gpu-sys" false (Kinds.accessible Kinds.Gpu Kinds.System)

let test_kinds_strings () =
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        "proc round-trip"
        (Some (Kinds.proc_kind_to_string k))
        (Option.map Kinds.proc_kind_to_string
           (Kinds.proc_kind_of_string (Kinds.proc_kind_to_string k))))
    Kinds.all_proc_kinds;
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        "mem round-trip"
        (Some (Kinds.mem_kind_to_string k))
        (Option.map Kinds.mem_kind_to_string
           (Kinds.mem_kind_of_string (Kinds.mem_kind_to_string k))))
    Kinds.all_mem_kinds;
  Alcotest.(check bool) "garbage rejected" true (Kinds.mem_kind_of_string "nope" = None)

let test_accessible_kinds_fastest_first () =
  Alcotest.(check bool) "gpu list" true
    (Kinds.accessible_mem_kinds Kinds.Gpu = [ Kinds.Frame_buffer; Kinds.Zero_copy ]);
  Alcotest.(check bool) "cpu list" true
    (Kinds.accessible_mem_kinds Kinds.Cpu = [ Kinds.System; Kinds.Zero_copy ])

let test_inventory () =
  let m = machine () in
  (* testbed: 1 socket x 2 cores + 1 gpu per node, 2 nodes *)
  Alcotest.(check int) "processors" 6 (Array.length m.Machine.processors);
  (* per node: 1 SYS + 1 ZC + 1 FB *)
  Alcotest.(check int) "memories" 6 (Array.length m.Machine.memories);
  Alcotest.(check int) "cpus per node" 2 (Machine.procs_of_kind_per_node m Kinds.Cpu);
  Alcotest.(check int) "gpus per node" 1 (Machine.procs_of_kind_per_node m Kinds.Gpu)

let test_proc_lookup () =
  let m = machine () in
  let p = Machine.proc m ~node:1 ~kind:Kinds.Gpu ~local:0 in
  Alcotest.(check int) "node" 1 p.Machine.pnode;
  Alcotest.(check bool) "kind" true (Kinds.equal_proc p.Machine.pkind Kinds.Gpu);
  Alcotest.check_raises "bad node" (Invalid_argument "Machine.proc: bad node") (fun () ->
      ignore (Machine.proc m ~node:9 ~kind:Kinds.Cpu ~local:0));
  Alcotest.check_raises "bad local" (Invalid_argument "Machine.proc: bad local index")
    (fun () -> ignore (Machine.proc m ~node:0 ~kind:Kinds.Gpu ~local:3))

let test_closest_memory () =
  let m = machine () in
  let gpu = Machine.proc m ~node:0 ~kind:Kinds.Gpu ~local:0 in
  let fb = Machine.closest_memory m gpu Kinds.Frame_buffer in
  Alcotest.(check bool) "fb kind" true (Kinds.equal_mem fb.Machine.mkind Kinds.Frame_buffer);
  Alcotest.(check int) "fb node" 0 fb.Machine.mnode;
  let zc = Machine.closest_memory m gpu Kinds.Zero_copy in
  Alcotest.(check bool) "zc kind" true (Kinds.equal_mem zc.Machine.mkind Kinds.Zero_copy);
  Alcotest.check_raises "gpu cannot address SYS"
    (Invalid_argument "Machine.closest_memory: GPU cannot address SYS") (fun () ->
      ignore (Machine.closest_memory m gpu Kinds.System))

let test_addressable () =
  let m = machine () in
  let cpu = Machine.proc m ~node:0 ~kind:Kinds.Cpu ~local:0 in
  let sys0 = Machine.closest_memory m cpu Kinds.System in
  Alcotest.(check bool) "cpu addresses own sys" true (Machine.addressable m cpu sys0);
  let cpu1 = Machine.proc m ~node:1 ~kind:Kinds.Cpu ~local:0 in
  Alcotest.(check bool) "cross-node not addressable" false (Machine.addressable m cpu1 sys0)

let test_channels () =
  let m = machine () in
  let gpu0 = Machine.proc m ~node:0 ~kind:Kinds.Gpu ~local:0 in
  let cpu0 = Machine.proc m ~node:0 ~kind:Kinds.Cpu ~local:0 in
  let fb0 = Machine.closest_memory m gpu0 Kinds.Frame_buffer in
  let zc0 = Machine.closest_memory m gpu0 Kinds.Zero_copy in
  let sys0 = Machine.closest_memory m cpu0 Kinds.System in
  let gpu1 = Machine.proc m ~node:1 ~kind:Kinds.Gpu ~local:0 in
  let fb1 = Machine.closest_memory m gpu1 Kinds.Frame_buffer in
  Alcotest.(check bool) "same memory" true (Machine.channel_between m fb0 fb0 = Machine.Same_memory);
  Alcotest.(check bool) "fb-zc is pcie" true (Machine.channel_between m fb0 zc0 = Machine.Pcie);
  Alcotest.(check bool) "sys-zc is host" true (Machine.channel_between m sys0 zc0 = Machine.Host_local);
  Alcotest.(check bool) "fb-fb cross node is network" true
    (Machine.channel_between m fb0 fb1 = Machine.Network)

let test_cross_socket_channel () =
  let m = Presets.shepard ~nodes:1 in
  let cpu0 = Machine.proc m ~node:0 ~kind:Kinds.Cpu ~local:0 in
  let cpu1 = Machine.proc m ~node:0 ~kind:Kinds.Cpu ~local:1 in
  let s0 = Machine.closest_memory m cpu0 Kinds.System in
  let s1 = Machine.closest_memory m cpu1 Kinds.System in
  Alcotest.(check bool) "different sockets" true (s0.Machine.mid <> s1.Machine.mid);
  Alcotest.(check bool) "cross-socket channel" true
    (Machine.channel_between m s0 s1 = Machine.Cross_socket)

let test_copy_cost_monotone () =
  let m = machine () in
  let gpu0 = Machine.proc m ~node:0 ~kind:Kinds.Gpu ~local:0 in
  let fb0 = Machine.closest_memory m gpu0 Kinds.Frame_buffer in
  let zc0 = Machine.closest_memory m gpu0 Kinds.Zero_copy in
  Alcotest.(check (float 0.0)) "same memory free" 0.0
    (Machine.copy_cost m ~src:fb0 ~dst:fb0 ~bytes:1e9);
  let small = Machine.copy_cost m ~src:fb0 ~dst:zc0 ~bytes:1e6 in
  let big = Machine.copy_cost m ~src:fb0 ~dst:zc0 ~bytes:1e8 in
  Alcotest.(check bool) "monotone in bytes" true (big > small);
  Alcotest.(check bool) "latency floor" true (small > 0.0)

let test_network_fb_staging () =
  (* a cross-node copy out of FB must cost at least the pure-network
     copy of the same bytes from ZC (extra PCIe staging hop) *)
  let m = machine () in
  let gpu0 = Machine.proc m ~node:0 ~kind:Kinds.Gpu ~local:0 in
  let gpu1 = Machine.proc m ~node:1 ~kind:Kinds.Gpu ~local:0 in
  let fb0 = Machine.closest_memory m gpu0 Kinds.Frame_buffer in
  let zc0 = Machine.closest_memory m gpu0 Kinds.Zero_copy in
  let zc1 = Machine.closest_memory m gpu1 Kinds.Zero_copy in
  let fb1 = Machine.closest_memory m gpu1 Kinds.Frame_buffer in
  let bytes = 1e7 in
  let zz = Machine.copy_cost m ~src:zc0 ~dst:zc1 ~bytes in
  let fz = Machine.copy_cost m ~src:fb0 ~dst:zc1 ~bytes in
  let ff = Machine.copy_cost m ~src:fb0 ~dst:fb1 ~bytes in
  Alcotest.(check bool) "fb source costs more" true (fz > zz);
  Alcotest.(check bool) "fb both ends costs most" true (ff > fz)

let test_make_validation () =
  Alcotest.check_raises "bad nodes" (Invalid_argument "Machine.make: nodes must be positive")
    (fun () -> ignore (Presets.testbed ~nodes:0))

let test_cpu_only () =
  let m = Presets.cpu_only ~nodes:1 in
  Alcotest.(check (list bool)) "only cpu available" [ true; false ]
    (List.map
       (fun k -> List.mem k (Machine.proc_kinds_available m))
       [ Kinds.Cpu; Kinds.Gpu ])

let test_mem_kind_capacity () =
  let m = machine () in
  Alcotest.(check (float 1.0)) "fb capacity" 1e9 (Machine.mem_kind_capacity m Kinds.Frame_buffer);
  Alcotest.(check (float 1.0)) "zc capacity" 2e9 (Machine.mem_kind_capacity m Kinds.Zero_copy)

let suite =
  [
    Alcotest.test_case "kind accessibility" `Quick test_kinds_accessibility;
    Alcotest.test_case "kind strings" `Quick test_kinds_strings;
    Alcotest.test_case "accessible kinds order" `Quick test_accessible_kinds_fastest_first;
    Alcotest.test_case "inventory" `Quick test_inventory;
    Alcotest.test_case "proc lookup" `Quick test_proc_lookup;
    Alcotest.test_case "closest memory" `Quick test_closest_memory;
    Alcotest.test_case "addressable" `Quick test_addressable;
    Alcotest.test_case "channels" `Quick test_channels;
    Alcotest.test_case "cross-socket" `Quick test_cross_socket_channel;
    Alcotest.test_case "copy cost" `Quick test_copy_cost_monotone;
    Alcotest.test_case "network FB staging" `Quick test_network_fb_staging;
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "cpu-only machine" `Quick test_cpu_only;
    Alcotest.test_case "mem kind capacity" `Quick test_mem_kind_capacity;
  ]
