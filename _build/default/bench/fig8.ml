(* Figure 8: memory-constrained Pennant.  Inputs are sized 1.3 %,
   7.1 % and 14.3 % over the largest zone count whose working set fits
   the Frame-Buffer.  The straightforward strategy places everything in
   GPU Zero-Copy; AutoMap keeps a subset of the collections in FB and
   demotes the rest, and must be several times faster (the paper
   reports at least 4x and up to 50x).

   On the Lassen model the four 16 GB Frame-Buffers exceed the 60 GB
   Zero-Copy pool, so the all-ZC strategy itself goes out of memory;
   the harness also reports the all-CPU+System strategy and computes
   AutoMap's speedup against the best *feasible* simple strategy. *)

let overs = [ 0.013; 0.071; 0.143 ]

let run_cluster name machine_of =
  List.iter
    (fun nodes ->
      Bench_common.section
        (Printf.sprintf "Figure 8: Pennant over-capacity inputs (%s, %d node%s)" name
           nodes (if nodes = 1 then "" else "s"));
      let machine = machine_of ~nodes in
      let seed = !Bench_common.scale.seed in
      let fb = Machine.mem_kind_capacity machine Kinds.Frame_buffer in
      let gpus = Machine.procs_of_kind_per_node machine Kinds.Gpu in
      let t =
        Table.create
          [ "input"; "default"; "GPU+ZC (ms)"; "CPU+SYS (ms)"; "AutoMap (ms)";
            "speedup"; "AM placement" ]
      in
      let plot_rows = ref [] in
      List.iter
        (fun over ->
          let zones =
            (1.0 +. over) *. fb /. Pennant.bytes_per_zone
            *. float_of_int (gpus * nodes)
          in
          let g = Pennant.graph_of_zones ~nodes ~zones in
          let default = Mapping.default_start g machine in
          let default_cell =
            match Bench_common.measure_mapping ~runs:1 machine g default ~seed with
            | Some _ -> "fits?!"
            | None -> "OOM"
          in
          let strategy mem =
            Mapping.make g
              ~distribute:(fun _ -> true)
              ~proc:(fun task ->
                if
                  Kinds.accessible Kinds.Gpu mem
                  && Graph.has_variant task Kinds.Gpu
                then Kinds.Gpu
                else Kinds.Cpu)
              ~mem:(fun _ -> mem)
          in
          let measure mem =
            Bench_common.measure_mapping ~runs:(Bench_common.runs ()) machine g
              (strategy mem) ~seed
          in
          let p_zc = measure Kinds.Zero_copy in
          let p_sys = measure Kinds.System in
          let r =
            Driver.run ~runs:(Bench_common.runs ())
              ~final_runs:(Bench_common.final_runs ()) ~seed
              (Driver.Ccd { rotations = 5 })
              machine g
          in
          let cell = function Some v -> Printf.sprintf "%.1f" (v *. 1e3) | None -> "OOM" in
          let baseline =
            match (p_zc, p_sys) with
            | Some v, _ -> Some v
            | None, Some v -> Some v
            | None, None -> None
          in
          plot_rows :=
            ( Printf.sprintf "+%.1f%%" (over *. 100.0),
              Option.value ~default:nan p_zc,
              Option.value ~default:nan p_sys,
              r.Driver.perf )
            :: !plot_rows;
          Table.add_row t
            [
              Printf.sprintf "+%.1f%%" (over *. 100.0);
              default_cell;
              cell p_zc;
              cell p_sys;
              Printf.sprintf "%.1f" (r.Driver.perf *. 1e3);
              (match baseline with
              | Some v -> Printf.sprintf "%.1fx" (v /. r.Driver.perf)
              | None -> "-");
              Report.placement_summary g r.Driver.best;
            ])
        overs;
      Table.print t;
      let rows = List.rev !plot_rows in
      Bench_common.save_plot
        (Printf.sprintf "fig8_%s_%dn" (String.lowercase_ascii name) nodes)
        (Svg_plot.bar_chart
           ~title:
             (Printf.sprintf "Pennant over-capacity inputs (%s, %d node(s))" name nodes)
           ~ylabel:"execution time (ms)"
           ~categories:(List.map (fun (c, _, _, _) -> c) rows)
           [
             ("GPU+ZC", List.map (fun (_, v, _, _) -> v *. 1e3) rows);
             ("CPU+SYS", List.map (fun (_, _, v, _) -> v *. 1e3) rows);
             ("AutoMap", List.map (fun (_, _, _, v) -> v *. 1e3) rows);
           ]))
    (Bench_common.node_counts ())

let run () =
  run_cluster "Shepard" (fun ~nodes -> Presets.shepard ~nodes);
  run_cluster "Lassen" (fun ~nodes -> Presets.lassen ~nodes)
