(* Figure 5: description of the five benchmark applications — task
   count, collection-argument count, search-space size.  The paper also
   quotes wall-clock CCD search hours on the physical clusters; we
   report the corresponding virtual search time measured by one CCD run
   on the smallest input (full mode: the canonical input). *)

let run () =
  Bench_common.section "Figure 5: benchmark applications";
  let t =
    Table.create
      [ "Application"; "Tasks"; "Collection Args"; "Search Space (log2)";
        "CCD virtual search time (s)" ]
  in
  let machine_for app =
    if app.App.app_name = "Maestro" then Presets.lassen ~nodes:1
    else Presets.shepard ~nodes:1
  in
  List.iter
    (fun app ->
      let machine = machine_for app in
      let input = List.hd (app.App.inputs ~nodes:1) in
      let g = app.App.graph ~nodes:1 ~input in
      let space = Space.make g machine in
      let r =
        Driver.run ~runs:(Bench_common.runs ()) ~final_runs:1 ~seed:!Bench_common.scale.seed
          (Driver.Ccd { rotations = 5 })
          machine g
      in
      Table.add_row t
        [
          app.App.app_name;
          string_of_int (Graph.n_tasks g);
          string_of_int (Graph.n_collections g);
          Printf.sprintf "~2^%.0f" (Space.log2_size space);
          Printf.sprintf "%.1f" r.Driver.virtual_search_time;
        ])
    App.all;
  Table.print t;
  Bench_common.note
    "(paper: Circuit 3/15/2^18, Stencil 2/12/2^14, Pennant 31/97/2^128, HTR 28/72/2^100, Maestro 13(LF)/30/2^43)"
