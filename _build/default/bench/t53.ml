(* §5.3 prose numbers: mappings suggested vs. evaluated per algorithm
   on Pennant (the paper reports CCD 1941/460, CD 389/226, OpenTuner
   157202/273 — two orders of magnitude more suggestions than
   evaluations for the generic tuner). *)

let run () =
  Bench_common.section "§5.3: suggested vs evaluated mappings (Pennant 320x90, 1 node)";
  let machine = Presets.shepard ~nodes:1 in
  let g = App.pennant.App.graph ~nodes:1 ~input:"320x90" in
  let seed = !Bench_common.scale.seed in
  let ccd =
    Driver.run ~runs:(Bench_common.runs ()) ~final_runs:1 ~seed
      (Driver.Ccd { rotations = 5 }) machine g
  in
  let budget = ccd.Driver.virtual_search_time in
  let t = Table.create [ "algorithm"; "suggested"; "evaluated"; "suggested/evaluated" ] in
  let row name (r : Driver.result) =
    Table.add_row t
      [
        name;
        string_of_int r.Driver.suggested;
        string_of_int r.Driver.evaluated;
        Printf.sprintf "%.0fx"
          (float_of_int r.Driver.suggested /. float_of_int (max 1 r.Driver.evaluated));
      ]
  in
  row "CCD" ccd;
  row "CD"
    (Driver.run ~runs:(Bench_common.runs ()) ~final_runs:1 ~seed ~budget Driver.Cd
       machine g);
  row "Ensemble(OT)"
    (Driver.run ~runs:(Bench_common.runs ()) ~final_runs:1 ~seed ~budget
       Driver.Ensemble_tuner machine g);
  Table.print t;
  Bench_common.note "(paper: CCD 1941/460, CD 389/226, OpenTuner 157202/273)"
