(* Shared configuration and helpers for the experiment harness.

   Every experiment prints the rows of the corresponding paper figure
   or table.  The default scale is reduced but shape-preserving so the
   whole harness completes in minutes; [--full] runs the paper-scale
   protocol (all node counts, every input, 7 search runs per candidate
   and top-5 x 30 final evaluation). *)

type scale = { full : bool; seed : int }

let scale = ref { full = false; seed = 0 }

(* when set (--plots DIR), experiments additionally render their figure
   as an SVG file in DIR *)
let plots_dir : string option ref = ref None

let save_plot name svg =
  match !plots_dir with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path = Filename.concat dir (name ^ ".svg") in
      Svg_plot.save path svg;
      Printf.printf "(plot written to %s)\n%!" path

let runs () = if !scale.full then 7 else 3
let final_runs () = if !scale.full then 30 else 7
let node_counts () = if !scale.full then [ 1; 2; 4; 8 ] else [ 1; 4 ]

let thin_inputs inputs =
  (* keep every input in full mode, every other one otherwise *)
  if !scale.full then inputs
  else List.filteri (fun i _ -> i mod 2 = 0 || i = List.length inputs - 1) inputs

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n%!" s) fmt

(* Measure a fixed mapping with the §5 protocol. *)
let measure_mapping ?(runs = 7) machine graph mapping ~seed =
  let ev = Evaluator.create ~runs ~seed machine graph in
  try Some (Stats.mean (Evaluator.measure ev mapping)) with Failure _ -> None

let speedup_cell baseline = function
  | Some t when t > 0.0 -> Printf.sprintf "%.2f" (baseline /. t)
  | Some _ | None -> "OOM"
