(* Figure 6 (a-d): speedup of the custom mapper and AutoMap-CCD over
   the Legion default mapper, per application, across weak-scaled
   inputs and node counts, on the Shepard machine model. *)

let run_app (app : App.t) =
  List.iter
    (fun nodes ->
      Bench_common.section
        (Printf.sprintf "Figure 6 (%s, %d node%s): speedup over default mapper"
           app.App.app_name nodes
           (if nodes = 1 then "" else "s"));
      let t = Table.create [ "input"; "default (ms)"; "custom"; "AM-CCD" ] in
      let machine = Presets.shepard ~nodes in
      let inputs = Bench_common.thin_inputs (app.App.inputs ~nodes) in
      let rows =
        List.map
          (fun input ->
            let seed = !Bench_common.scale.seed in
            let tuning =
              Automap_api.tune ~app ~machine ~input ~seed
                ~runs:(Bench_common.runs ())
                ~final_runs:(Bench_common.final_runs ())
                ()
            in
            let find l =
              List.find (fun c -> c.Automap_api.label = l) tuning.Automap_api.comparisons
            in
            ( input,
              tuning.Automap_api.default_perf,
              (find "custom").Automap_api.speedup_vs_default,
              (find "automap").Automap_api.speedup_vs_default ))
          inputs
      in
      List.iter
        (fun (input, dflt, custom, am) ->
          Table.add_row t
            [
              input;
              Printf.sprintf "%.3f" (dflt *. 1e3);
              Printf.sprintf "%.2f" custom;
              Printf.sprintf "%.2f" am;
            ])
        rows;
      Table.print t;
      let series label f =
        { Svg_plot.label; points = List.mapi (fun i r -> (float_of_int i, f r)) rows }
      in
      Bench_common.save_plot
        (Printf.sprintf "fig6_%s_%dn" (String.lowercase_ascii app.App.app_name) nodes)
        (Svg_plot.line_chart ~x_categories:inputs ~y_min:0.0
           ~title:
             (Printf.sprintf "%s, %d node(s): speedup over default mapper"
                app.App.app_name nodes)
           ~xlabel:"input" ~ylabel:"speedup"
           [
             series "Custom Mapper" (fun (_, _, c, _) -> c);
             series "AM-CCD" (fun (_, _, _, a) -> a);
           ]))
    (Bench_common.node_counts ())

let run_circuit () = run_app App.circuit
let run_stencil () = run_app App.stencil
let run_pennant () = run_app App.pennant
let run_htr () = run_app App.htr
