bench/main.ml: Ablation Array Bench_common Fig23 Fig5 Fig6 Fig7 Fig8 Fig9 List Micro Printf Sensitivity String Sys T53 Unix
