bench/fig23.ml: App Bench_common Driver List Mapping Presets Printf Report
