bench/fig6.ml: App Automap_api Bench_common List Presets Printf String Svg_plot Table
