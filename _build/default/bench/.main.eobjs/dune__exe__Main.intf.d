bench/main.mli:
