bench/bench_common.ml: Evaluator Filename List Printf Stats Svg_plot Unix
