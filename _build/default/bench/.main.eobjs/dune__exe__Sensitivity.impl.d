bench/sensitivity.ml: App Bench_common Driver Graph List Machine Mapping Presets Printf Report Table
