bench/t53.ml: App Bench_common Driver Presets Printf Table
