bench/ablation.ml: App Bench_common Ccd Driver Energy Evaluator Exec Float Graph Heft List Mapping Online Placement Presets Printf Report Stats Table
