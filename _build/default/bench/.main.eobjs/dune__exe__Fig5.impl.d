bench/fig5.ml: App Bench_common Driver Graph List Presets Printf Space Table
