bench/fig9.ml: App Bench_common Driver List Presets Printf String Svg_plot Table
