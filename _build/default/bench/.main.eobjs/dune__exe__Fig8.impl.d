bench/fig8.ml: Bench_common Driver Graph Kinds List Machine Mapping Option Pennant Presets Printf Report String Svg_plot Table
