bench/fig7.ml: Bench_common Driver Float List Maestro Mapping Presets Printf Svg_plot Table
