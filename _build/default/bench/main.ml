(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation section (see DESIGN.md's per-experiment index).

   Usage:
     dune exec bench/main.exe                 -- all experiments, reduced scale
     dune exec bench/main.exe -- --full       -- paper-scale protocol
     dune exec bench/main.exe -- fig6a fig8   -- selected experiments
     dune exec bench/main.exe -- --seed 3 fig9
     dune exec bench/main.exe -- --plots figures fig6a fig8

   Experiments: fig5 fig6a fig6b fig6c fig6d fig7 fig8 fig9 t53 fig23 ablation sensitivity micro *)

let experiments =
  [
    ("fig5", Fig5.run);
    ("fig6a", Fig6.run_circuit);
    ("fig6b", Fig6.run_stencil);
    ("fig6c", Fig6.run_pennant);
    ("fig6d", Fig6.run_htr);
    ("fig7", Fig7.run);
    ("fig8", Fig8.run);
    ("fig9", Fig9.run);
    ("t53", T53.run);
    ("fig23", Fig23.run);
    ("ablation", Ablation.run);
    ("sensitivity", Sensitivity.run);
    ("micro", Micro.run);
  ]

let () =
  let selected = ref [] in
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest ->
        Bench_common.scale := { !Bench_common.scale with full = true };
        parse rest
    | "--seed" :: v :: rest ->
        Bench_common.scale := { !Bench_common.scale with seed = int_of_string v };
        parse rest
    | "--plots" :: dir :: rest ->
        Bench_common.plots_dir := Some dir;
        parse rest
    | name :: rest when List.mem_assoc name experiments ->
        selected := name :: !selected;
        parse rest
    | unknown :: _ ->
        Printf.eprintf "unknown argument %S\nexperiments: %s\n" unknown
          (String.concat " " (List.map fst experiments));
        exit 2
  in
  parse args;
  let to_run =
    match List.rev !selected with [] -> List.map fst experiments | l -> l
  in
  Printf.printf "AutoMap experiment harness (%s scale, seed %d)\n%!"
    (if !Bench_common.scale.full then "paper" else "reduced")
    !Bench_common.scale.seed;
  let t0 = Unix.gettimeofday () in
  List.iter (fun name -> (List.assoc name experiments) ()) to_run;
  Printf.printf "\nall experiments done in %.1f s (wall clock)\n" (Unix.gettimeofday () -. t0)
