(* Figure 7: multi-fidelity ensemble CFD (Maestro) on the Lassen
   machine model.  For each (LF count, resolution, node count) we
   report the *degradation* of the ensemble relative to the
   high-fidelity sample running alone, for the two standard strategies
   (all-LF on CPU+System, all-LF on GPU+Zero-Copy) and for AutoMap;
   values near 1.0 mean the low-fidelity samples ride along for free. *)

let lf_counts () = if !Bench_common.scale.full then [ 4; 8; 16; 32; 64 ] else [ 8; 32; 64 ]
let resolutions = [ 16; 32 ]
let nodes_list () = if !Bench_common.scale.full then [ 1; 2 ] else [ 1 ]

let run () =
  List.iter
    (fun nodes ->
      Bench_common.section
        (Printf.sprintf "Figure 7: Maestro degradation vs HF-alone (%d node%s, Lassen)"
           nodes (if nodes = 1 then "" else "s"));
      let machine = Presets.lassen ~nodes in
      let seed = !Bench_common.scale.seed in
      let hf_alone =
        let g = Maestro.graph ~nodes ~n_lf:0 ~resolution:16 () in
        match
          Bench_common.measure_mapping ~runs:(Bench_common.runs ()) machine g
            (Mapping.default_start g machine) ~seed
        with
        | Some v -> v
        | None -> failwith "HF-alone baseline failed"
      in
      Bench_common.note "HF alone: %.2f ms/iter" (hf_alone *. 1e3);
      let t = Table.create [ "config"; "LF on CPU+SYS"; "LF on GPU+ZC"; "AM-CCD" ] in
      let rows =
        List.concat_map
          (fun resolution ->
            List.map
              (fun n_lf ->
                let g = Maestro.graph ~nodes ~n_lf ~resolution () in
                let deg mapping =
                  match
                    Bench_common.measure_mapping ~runs:(Bench_common.runs ()) machine g
                      mapping ~seed
                  with
                  | Some v -> v /. hf_alone
                  | None -> nan
                in
                let r =
                  Driver.run ~runs:(Bench_common.runs ())
                    ~final_runs:(Bench_common.final_runs ())
                    ~seed
                    ~start:(Maestro.lf_gpu_zc g machine)
                    (Driver.Ccd { rotations = 5 })
                    machine g
                in
                ( Printf.sprintf "%d LFs @ %d^3" n_lf resolution,
                  deg (Maestro.lf_cpu_sys g machine),
                  deg (Maestro.lf_gpu_zc g machine),
                  r.Driver.perf /. hf_alone ))
              (lf_counts ()))
          resolutions
      in
      let cell v = if Float.is_nan v then "OOM" else Printf.sprintf "%.3f" v in
      List.iter
        (fun (config, cpu, zc, am) ->
          Table.add_row t [ config; cell cpu; cell zc; cell am ])
        rows;
      Table.print t;
      let cats = List.map (fun (c, _, _, _) -> c) rows in
      let series label f =
        { Svg_plot.label; points = List.mapi (fun i r -> (float_of_int i, f r)) rows }
      in
      Bench_common.save_plot
        (Printf.sprintf "fig7_%dn" nodes)
        (Svg_plot.line_chart ~x_categories:cats ~y_min:0.9
           ~title:(Printf.sprintf "Maestro: degradation vs HF-alone (%d node(s))" nodes)
           ~xlabel:"low-fidelity configuration" ~ylabel:"degradation"
           [
             series "LF on CPU+SYS" (fun (_, v, _, _) -> v);
             series "LF on GPU+ZC" (fun (_, _, v, _) -> v);
             series "AutoMap" (fun (_, _, _, v) -> v);
           ]))
    (nodes_list ())
