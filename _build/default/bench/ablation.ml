(* Ablation benches for the design choices DESIGN.md calls out:

   - rotations: §5 fixes CCD at 5 rotations ("more increased the search
     time without improving performance, fewer made CCD perform
     similarly to CD") — we sweep the knob;
   - algorithms: the full panel at equal virtual-time budget, adding
     the baselines the paper discusses but does not plot (HEFT from
     related work, valid-space random sampling, simulated annealing);
   - measurement runs: §5 evaluates every candidate 7 times because
     "individual mappings can have significant variation in
     performance from run to run" — we quantify how often a 1-run
     search picks the wrong mapping;
   - objective: §3.3 claims the framework "is suitable for minimizing
     other metrics (e.g., power consumption)" — we tune the same app
     for time and for energy and show the mappings diverge;
   - online: §6's inspector-executor deployment mode. *)

let seed () = !Bench_common.scale.seed

let rotations () =
  Bench_common.section "Ablation: CCD rotations (Pennant 320x90, 1 node)";
  let machine = Presets.shepard ~nodes:1 in
  let g = App.pennant.App.graph ~nodes:1 ~input:"320x90" in
  let t = Table.create [ "rotations"; "best (ms/iter)"; "evaluated"; "search time (s)" ] in
  List.iter
    (fun rotations ->
      let r =
        Driver.run ~runs:(Bench_common.runs ()) ~final_runs:1 ~seed:(seed ())
          (Driver.Ccd { rotations }) machine g
      in
      Table.add_row t
        [
          string_of_int rotations;
          Printf.sprintf "%.3f" (r.Driver.perf *. 1e3);
          string_of_int r.Driver.evaluated;
          Printf.sprintf "%.1f" r.Driver.virtual_search_time;
        ])
    [ 2; 3; 5; 8 ];
  Table.print t

let algorithms () =
  Bench_common.section "Ablation: search-algorithm panel at equal budget (Pennant 320x90)";
  let machine = Presets.shepard ~nodes:1 in
  let g = App.pennant.App.graph ~nodes:1 ~input:"320x90" in
  let ccd =
    Driver.run ~runs:(Bench_common.runs ()) ~final_runs:1 ~seed:(seed ())
      (Driver.Ccd { rotations = 5 }) machine g
  in
  let budget = ccd.Driver.virtual_search_time in
  let default_perf =
    match
      Bench_common.measure_mapping ~runs:(Bench_common.runs ()) machine g
        (Mapping.default_start g machine) ~seed:(seed ())
    with
    | Some v -> v
    | None -> nan
  in
  let heft_perf =
    match
      Bench_common.measure_mapping ~runs:(Bench_common.runs ()) machine g
        (Heft.mapping machine g) ~seed:(seed ())
    with
    | Some v -> Printf.sprintf "%.3f" (v *. 1e3)
    | None -> "OOM"
  in
  let t = Table.create [ "algorithm"; "best (ms/iter)"; "vs default"; "evaluated" ] in
  Table.add_row t [ "default mapper"; Printf.sprintf "%.3f" (default_perf *. 1e3); "1.00"; "-" ];
  Table.add_row t [ "HEFT (related work)"; heft_perf; ""; "-" ];
  let row name (r : Driver.result) =
    Table.add_row t
      [
        name;
        Printf.sprintf "%.3f" (r.Driver.perf *. 1e3);
        Printf.sprintf "%.2f" (default_perf /. r.Driver.perf);
        string_of_int r.Driver.evaluated;
      ]
  in
  row "CCD" ccd;
  List.iter
    (fun algo ->
      row (Driver.algo_name algo)
        (Driver.run ~runs:(Bench_common.runs ()) ~final_runs:1 ~seed:(seed ()) ~budget
           algo machine g))
    [
      Driver.Cd;
      Driver.Ensemble_tuner;
      Driver.Random_walk { max_evals = 100_000 };
      Driver.Annealing { max_evals = 100_000 };
    ];
  Table.print t

let measurement_runs () =
  Bench_common.section
    "Ablation: candidate-measurement repetitions under run-to-run noise (Circuit n100w400)";
  let machine = Presets.shepard ~nodes:1 in
  let g = App.circuit.App.graph ~nodes:1 ~input:"n100w400" in
  (* ground truth: noise-free performance of the search result *)
  let truth mapping =
    match Exec.run ~noise_sigma:0.0 machine g mapping with
    | Ok r -> r.Exec.per_iteration
    | Error _ -> infinity
  in
  let t =
    Table.create
      [ "runs/candidate"; "mean regret vs noise-free best (%)"; "trials" ]
  in
  let trials = if !Bench_common.scale.full then 10 else 5 in
  let best_truth = ref infinity in
  let regrets =
    List.map
      (fun runs ->
        let rs =
          List.init trials (fun trial ->
              let ev =
                Evaluator.create ~runs ~noise_sigma:0.08 ~seed:(100 + trial) machine g
              in
              let m, _ = Ccd.search ev in
              let v = truth m in
              best_truth := Float.min !best_truth v;
              v)
        in
        (runs, rs))
      [ 1; 3; 7 ]
  in
  List.iter
    (fun (runs, rs) ->
      let regret =
        Stats.mean (List.map (fun v -> 100.0 *. ((v /. !best_truth) -. 1.0)) rs)
      in
      Table.add_row t
        [ string_of_int runs; Printf.sprintf "%.1f" regret; string_of_int trials ])
    regrets;
  Table.print t

let objective () =
  Bench_common.section "Ablation: time vs energy objective (Circuit n800w3200, 1 node)";
  let machine = Presets.shepard ~nodes:1 in
  let g = App.circuit.App.graph ~nodes:1 ~input:"n800w3200" in
  let pm = Energy.default_power in
  let describe label mapping =
    match Exec.run ~noise_sigma:0.0 machine g mapping with
    | Ok r ->
        Printf.printf "  %-14s %8.3f ms/iter  %8.3f J/iter   %s\n" label
          (r.Exec.per_iteration *. 1e3)
          (Energy.joules_per_iteration machine pm r)
          (Report.placement_summary g mapping)
    | Error e -> Printf.printf "  %-14s %s\n" label (Placement.error_to_string e)
  in
  let for_time =
    Driver.run ~runs:(Bench_common.runs ()) ~final_runs:(Bench_common.final_runs ())
      ~seed:(seed ()) (Driver.Ccd { rotations = 5 }) machine g
  in
  let for_energy =
    Driver.run ~runs:(Bench_common.runs ()) ~final_runs:(Bench_common.final_runs ())
      ~seed:(seed ())
      ~objective:(fun machine r -> Energy.joules_per_iteration machine pm r)
      (Driver.Ccd { rotations = 5 }) machine g
  in
  describe "default" (Mapping.default_start g machine);
  describe "tuned (time)" for_time.Driver.best;
  describe "tuned (energy)" for_energy.Driver.best

let online () =
  Bench_common.section "Ablation: inspector-executor on-line tuning (HTR 16x16y18z)";
  let machine = Presets.shepard ~nodes:1 in
  let g = App.htr.App.graph ~nodes:1 ~input:"16x16y18z" in
  let t =
    Table.create
      [ "job length (iters)"; "search share"; "untuned (s)"; "tuned (s)"; "speedup" ]
  in
  List.iter
    (fun total_iterations ->
      List.iter
        (fun search_fraction ->
          let r = Online.run ~seed:(seed ()) ~search_fraction ~total_iterations machine g in
          Table.add_row t
            [
              string_of_int total_iterations;
              Printf.sprintf "%.0f%%" (search_fraction *. 100.0);
              Printf.sprintf "%.2f" r.Online.default_total;
              Printf.sprintf "%.2f" r.Online.tuned_total;
              Printf.sprintf "%.2f" r.Online.speedup;
            ])
        [ 0.05; 0.2 ])
    [ 2_000; 20_000 ];
  Table.print t

let strategy () =
  Bench_common.section
    "Ablation: group-task distribution strategies (Circuit n800w3200, 4 nodes)";
  (* §3.2 flags searching the cross-node decomposition as future work
     and §5 notes Circuit's custom mapper used a different decomposition
     than AutoMap; the extended space closes that gap. *)
  let machine = Presets.shepard ~nodes:4 in
  let g = App.circuit.App.graph ~nodes:4 ~input:"n800w3200" in
  let describe label mapping =
    match
      Bench_common.measure_mapping ~runs:(Bench_common.runs ()) machine g mapping
        ~seed:(seed ())
    with
    | Some v -> Printf.printf "  %-22s %8.3f ms/iter\n" label (v *. 1e3)
    | None -> Printf.printf "  %-22s OOM\n" label
  in
  let default = Mapping.default_start g machine in
  describe "default (blocked)" default;
  describe "all-cyclic"
    (Mapping.make g
       ~strategy:(fun _ -> Mapping.Cyclic)
       ~distribute:(fun t -> Mapping.distribute_of default t.Graph.tid)
       ~proc:(fun t -> Mapping.proc_of default t.Graph.tid)
       ~mem:(fun c -> Mapping.mem_of default c.Graph.cid));
  let tune ?extended label =
    let r =
      Driver.run ~runs:(Bench_common.runs ()) ~final_runs:(Bench_common.final_runs ())
        ~seed:(seed ()) ?extended (Driver.Ccd { rotations = 5 }) machine g
    in
    Printf.printf "  %-22s %8.3f ms/iter  (%d evaluated)\n" label
      (r.Driver.perf *. 1e3) r.Driver.evaluated
  in
  tune "AM-CCD (paper space)";
  tune ~extended:true "AM-CCD (extended)"

let run () =
  rotations ();
  strategy ();
  algorithms ();
  measurement_runs ();
  objective ();
  online ()
