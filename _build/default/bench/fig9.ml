(* Figure 9: best-found execution time as a function of search time
   for the three search algorithms (CCD, CD, Ensemble/OpenTuner) on
   Pennant and HTR, all given the same virtual-time budget.

   We print each algorithm's improvement trace — (virtual search
   seconds, best execution time per iteration) — which is exactly the
   data the paper plots, followed by the §5.3 search-efficiency
   summary (suggested vs. evaluated counts and the useful fraction of
   search time). *)

let algos = [ Driver.Ccd { rotations = 5 }; Driver.Cd; Driver.Ensemble_tuner ]

let configs () =
  let pennant = if !Bench_common.scale.full then [ "320x90"; "320x180" ] else [ "320x90" ] in
  let htr = if !Bench_common.scale.full then [ "8x8y9z"; "16x16y18z" ] else [ "8x8y9z" ] in
  List.map (fun i -> (App.pennant, i)) pennant @ List.map (fun i -> (App.htr, i)) htr

type outcome = { algo : Driver.algo; r : Driver.result }

let run_config (app, input) =
  Bench_common.section
    (Printf.sprintf "Figure 9: search-time traces, %s %s (Shepard, 1 node)"
       app.App.app_name input);
  let machine = Presets.shepard ~nodes:1 in
  let g = app.App.graph ~nodes:1 ~input in
  let seed = !Bench_common.scale.seed in
  (* budget: whatever CCD needs, measured first, then granted to all *)
  let ccd =
    Driver.run ~runs:(Bench_common.runs ()) ~final_runs:1 ~seed
      (List.hd algos) machine g
  in
  let budget = ccd.Driver.virtual_search_time in
  Bench_common.note "shared virtual-time budget: %.1f s" budget;
  let outcomes =
    { algo = List.hd algos; r = ccd }
    :: List.map
         (fun algo ->
           { algo; r = Driver.run ~runs:(Bench_common.runs ()) ~final_runs:1 ~seed ~budget algo machine g })
         (List.tl algos)
  in
  let t = Table.create [ "search time (s)"; "algorithm"; "best exec time (ms/iter)" ] in
  List.iter
    (fun { algo; r } ->
      List.iter
        (fun (vt, perf) ->
          Table.add_row t
            [
              Printf.sprintf "%8.2f" vt;
              Driver.algo_name algo;
              Printf.sprintf "%.3f" (perf *. 1e3);
            ])
        r.Driver.trace)
    outcomes;
  Table.print t;
  Bench_common.save_plot
    (Printf.sprintf "fig9_%s_%s" (String.lowercase_ascii app.App.app_name) input)
    (Svg_plot.line_chart
       ~title:
         (Printf.sprintf "%s %s: best mapping vs search time" app.App.app_name input)
       ~xlabel:"virtual search time (s)" ~ylabel:"best exec time (ms/iter)"
       (List.map
          (fun { algo; r } ->
            (* step-extend each trace to the full budget so the flat
               tail is visible, like the paper's staircase plots *)
            let pts = List.map (fun (vt, p) -> (vt, p *. 1e3)) r.Driver.trace in
            let pts =
              match List.rev pts with
              | (_, last) :: _ -> pts @ [ (r.Driver.virtual_search_time, last) ]
              | [] -> pts
            in
            { Svg_plot.label = Driver.algo_name algo; points = pts })
          outcomes));
  Bench_common.section "  search efficiency (§5.3)";
  let t2 =
    Table.create
      [ "algorithm"; "suggested"; "evaluated"; "cache hits"; "invalid"; "useful time" ]
  in
  List.iter
    (fun { algo; r } ->
      Table.add_row t2
        [
          Driver.algo_name algo;
          string_of_int r.Driver.suggested;
          string_of_int r.Driver.evaluated;
          string_of_int r.Driver.cache_hits;
          string_of_int r.Driver.invalid;
          Printf.sprintf "%.0f%%" (100.0 *. r.Driver.eval_time_fraction);
        ])
    outcomes;
  Table.print t2;
  outcomes

let run () = List.iter (fun c -> ignore (run_config c)) (configs ())
