(* Bechamel microbenchmarks: one [Test.make] per paper table/figure,
   each timing the hot kernel its harness leans on —

     FIG5  search-space statistics        (Space.log2_size)
     FIG6  simulator execution            (Exec.run, Circuit default)
     FIG7  ensemble-workload simulation   (Exec.run, Maestro)
     FIG8  capacity check / OOM detection (Placement.resolve)
     FIG9  Algorithm 2 fixed point        (Colocation.apply)
           overlap-graph construction     (Overlap.of_graph)
     T53   cached evaluation (dedup path) (Evaluator.evaluate)
     FIG23 mapping visualization          (Report.mapping)           *)

open Bechamel
open Toolkit

let pennant = lazy (App.pennant.App.graph ~nodes:1 ~input:"320x90")
let circuit = lazy (App.circuit.App.graph ~nodes:1 ~input:"n100w400")
let shepard = lazy (Presets.shepard ~nodes:1)

let test_fig5_space =
  Test.make ~name:"fig5: space log2 size"
    (Staged.stage (fun () ->
         let g = Lazy.force pennant in
         Space.log2_size (Space.make g (Lazy.force shepard))))

let test_fig6_sim =
  Test.make ~name:"fig6: simulate circuit"
    (Staged.stage (fun () ->
         let g = Lazy.force circuit in
         let machine = Lazy.force shepard in
         Exec.run ~noise_sigma:0.0 machine g (Mapping.default_start g machine)))

let maestro_g = lazy (Maestro.graph ~nodes:1 ~n_lf:8 ~resolution:16 ())
let lassen = lazy (Presets.lassen ~nodes:1)

let test_fig7_sim =
  Test.make ~name:"fig7: simulate maestro"
    (Staged.stage (fun () ->
         let g = Lazy.force maestro_g in
         let machine = Lazy.force lassen in
         Exec.run ~noise_sigma:0.0 machine g (Maestro.lf_gpu_zc g machine)))

let oversized_pennant =
  lazy
    (let machine = Lazy.force shepard in
     let fb = Machine.mem_kind_capacity machine Kinds.Frame_buffer in
     Pennant.graph_of_zones ~nodes:1 ~zones:(1.013 *. fb /. Pennant.bytes_per_zone))

let test_fig8_oom =
  Test.make ~name:"fig8: placement capacity check"
    (Staged.stage (fun () ->
         let g = Lazy.force oversized_pennant in
         let machine = Lazy.force shepard in
         Placement.resolve machine g (Mapping.default_start g machine)))

let test_fig9_colocation =
  Test.make ~name:"fig9: colocation fixed point"
    (Staged.stage (fun () ->
         let g = Lazy.force pennant in
         let machine = Lazy.force shepard in
         let overlap = Overlap.of_graph g in
         let base = Mapping.default_start g machine in
         let c = (List.hd (Graph.collections g)).Graph.cid in
         let t = (Graph.collection g c).Graph.owner in
         let f' = Mapping.set_mem (Mapping.set_proc base t Kinds.Gpu) c Kinds.Zero_copy in
         Colocation.apply g machine ~overlap ~mapping:f' ~t ~c ~k:Kinds.Gpu
           ~r:Kinds.Zero_copy))

let test_fig9_overlap =
  Test.make ~name:"fig9: overlap graph build"
    (Staged.stage (fun () -> Overlap.of_graph (Lazy.force pennant)))

let cached_ev =
  lazy
    (let g = Lazy.force pennant in
     let machine = Lazy.force shepard in
     let ev = Evaluator.create ~runs:2 ~seed:0 machine g in
     let m = Mapping.default_start g machine in
     ignore (Evaluator.evaluate ev m);
     (ev, m))

let test_t53_cached =
  Test.make ~name:"t53: cached evaluation (dedup)"
    (Staged.stage (fun () ->
         let ev, m = Lazy.force cached_ev in
         Evaluator.evaluate ev m))

let test_fig23_report =
  Test.make ~name:"fig23: mapping report"
    (Staged.stage (fun () ->
         let g = Lazy.force pennant in
         Report.mapping g (Mapping.default_start g (Lazy.force shepard))))

let tests =
  Test.make_grouped ~name:"automap" ~fmt:"%s %s"
    [
      test_fig5_space;
      test_fig6_sim;
      test_fig7_sim;
      test_fig8_oom;
      test_fig9_colocation;
      test_fig9_overlap;
      test_t53_cached;
      test_fig23_report;
    ]

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  Analyze.merge ols instances results

let img (window, results) =
  Bechamel_notty.Multiple.image_of_ols_results ~rect:window ~predictor:Measure.run
    results

let run () =
  Bench_common.section "Bechamel microbenchmarks (one per table/figure kernel)";
  List.iter
    (fun v -> Bechamel_notty.Unit.add v (Measure.unit v))
    Instance.[ monotonic_clock ];
  let results = benchmark () in
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  Notty_unix.output_image (Notty_unix.eol (img (window, results)))
