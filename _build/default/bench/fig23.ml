(* Figures 2 and 3: visualize the best mappings AutoMap discovers for
   HTR — the per-task processor kinds and per-argument memory kinds,
   with bars showing each argument's size relative to the largest
   (Figure 3's rectangles) — plus the diff against the default
   strategy and the placement counts §5 quotes ("9 collection
   arguments on Zero-Copy, 2 tasks on CPU"). *)

let configs () =
  if !Bench_common.scale.full then
    [ (1, "8x8y9z"); (2, "8x16y9z"); (4, "8x32y9z"); (4, "64x256y72z") ]
  else [ (1, "8x8y9z"); (4, "64x256y72z") ]

let run () =
  List.iter
    (fun (nodes, input) ->
      Bench_common.section
        (Printf.sprintf "Figures 2-3: best HTR mapping, %s on %d node%s" input nodes
           (if nodes = 1 then "" else "s"));
      let machine = Presets.shepard ~nodes in
      let g = App.htr.App.graph ~nodes ~input in
      let r =
        Driver.run ~runs:(Bench_common.runs ())
          ~final_runs:(Bench_common.final_runs ())
          ~seed:!Bench_common.scale.seed
          (Driver.Ccd { rotations = 5 })
          machine g
      in
      Bench_common.note "%s" (Report.placement_summary g r.Driver.best);
      let diff = Report.mapping_diff g (Mapping.default_start g machine) r.Driver.best in
      if diff = "" then Bench_common.note "(identical to the default mapping)"
      else Bench_common.note "changes vs default mapping:\n%s" diff;
      print_string (Report.mapping g r.Driver.best))
    (configs ())
