(* Quickstart: tune one application on one machine and inspect the
   result.

     dune exec examples/quickstart.exe

   Picks the Stencil benchmark on a single Shepard-class node, runs
   AutoMap's CCD search, and prints the discovered mapping next to the
   runtime-default and hand-written strategies. *)

let () =
  let machine = Presets.shepard ~nodes:1 in
  let app = App.stencil in
  let input = "1000x1000" in
  Format.printf "machine: %a@." Machine.pp machine;

  (* One call runs the whole §3.3 workflow: profile, search (CCD with 5
     rotations by default), final top-5 x 30 re-evaluation, and baseline
     comparisons. *)
  let tuning = Automap_api.tune ~app ~machine ~input () in

  Format.printf "@.%a@.@." Graph.pp_summary tuning.Automap_api.graph;
  List.iter
    (fun c ->
      Printf.printf "%-8s %8.3f ms/iter   %.2fx vs default\n" c.Automap_api.label
        (c.Automap_api.perf *. 1e3) c.Automap_api.speedup_vs_default)
    tuning.Automap_api.comparisons;

  let best = tuning.Automap_api.result.Driver.best in
  Printf.printf "\ndiscovered mapping: %s\n"
    (Report.placement_summary tuning.Automap_api.graph best);
  Printf.printf "\nchanges vs the default strategy:\n%s"
    (Report.mapping_diff tuning.Automap_api.graph
       (Mapping.default_start tuning.Automap_api.graph machine)
       best);

  (* The mapping serializes to a stable text format (§3.3) that a
     production run can reload. *)
  let serialized = Codec.to_string tuning.Automap_api.graph best in
  print_newline ();
  print_string serialized;
  match Codec.of_string tuning.Automap_api.graph serialized with
  | Ok _ -> print_endline "(round-trips through the mapping file format)"
  | Error e -> failwith e
