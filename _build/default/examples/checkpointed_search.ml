(* Checkpointed and portfolio search.

     dune exec examples/checkpointed_search.exe

   Long offline searches (the paper's Pennant/HTR searches ran for
   hours, Figure 5) benefit from two framework features:

   - the profiles database persists to disk, so an interrupted search
     warm-restarts without re-executing anything it already measured;
   - the algorithm portfolio shares one evaluator across CCD,
     simulated annealing and random sampling, so members deduplicate
     against each other's measurements. *)

let () =
  let machine = Presets.shepard ~nodes:1 in
  let g = App.pennant.App.graph ~nodes:1 ~input:"320x90" in

  (* session 1: run CCD and persist everything it measured *)
  let ev1 = Evaluator.create ~runs:3 ~noise_sigma:0.02 ~seed:0 machine g in
  let _, p1 = Ccd.search ev1 in
  let checkpoint = Profiles_db.save (Evaluator.db ev1) in
  Printf.printf "session 1 (CCD): best %.3f ms after %d executions; %d mappings checkpointed\n"
    (p1 *. 1e3) (Evaluator.evaluated ev1)
    (Profiles_db.size (Evaluator.db ev1));

  (* session 2: reload and run again — everything answers from cache *)
  (match Profiles_db.load g checkpoint with
  | Error e -> failwith e
  | Ok db ->
      let ev2 = Evaluator.create ~runs:3 ~noise_sigma:0.02 ~seed:0 ~db machine g in
      let _, p2 = Ccd.search ev2 in
      Printf.printf
        "session 2 (warm restart): best %.3f ms after %d executions (%d cache hits)\n"
        (p2 *. 1e3) (Evaluator.evaluated ev2) (Evaluator.cache_hits ev2));

  (* portfolio: CCD + annealing + random over one shared evaluator,
     under a 30-virtual-second budget split equally *)
  let ev3 = Evaluator.create ~runs:3 ~noise_sigma:0.02 ~seed:1 machine g in
  let best, p3 = Portfolio.search ~seed:1 ~budget:30.0 ev3 in
  Printf.printf "portfolio (%s): best %.3f ms — %s\n"
    (String.concat "+" (List.map Portfolio.member_name Portfolio.default_members))
    (p3 *. 1e3)
    (Report.placement_summary g best)
