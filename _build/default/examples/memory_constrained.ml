(* Memory-constrained tuning (the Figure 8 scenario).

     dune exec examples/memory_constrained.exe

   Pennant with a working set 7 % larger than the GPU Frame-Buffer:
   the default all-FB mapping fails with OOM; the simple all-Zero-Copy
   strategy runs slowly; AutoMap discovers which subset of the 97
   collection arguments to demote, and the priority-list fallback mode
   (§3.1) is shown as the runtime-side alternative. *)

let () =
  let machine = Presets.shepard ~nodes:1 in
  let fb = Machine.mem_kind_capacity machine Kinds.Frame_buffer in
  let zones = 1.071 *. fb /. Pennant.bytes_per_zone in
  let g = Pennant.graph_of_zones ~nodes:1 ~zones in
  Printf.printf "Pennant with %.2e zones (~%.1f GB resident, FB is %.0f GB)\n\n" zones
    (zones *. Pennant.bytes_per_zone /. 1e9)
    (fb /. 1e9);

  (* 1. The default mapping cannot be placed. *)
  let default = Mapping.default_start g machine in
  (match Exec.run machine g default with
  | Error e -> Printf.printf "default mapping: %s\n" (Placement.error_to_string e)
  | Ok _ -> assert false);

  (* 2. §3.1's generalized priority-list mapping: the runtime demotes
     overflowing placements to the next accessible memory kind. *)
  (match Exec.run ~fallback:true machine g default with
  | Ok r ->
      Printf.printf "priority-list fallback: %.1f ms/iter (%d placements demoted)\n"
        (r.Exec.per_iteration *. 1e3) r.Exec.demotions
  | Error e -> failwith (Placement.error_to_string e));

  (* 3. The straightforward hand strategy: everything in Zero-Copy. *)
  let all_zc =
    Mapping.make g
      ~distribute:(fun _ -> true)
      ~proc:(fun t -> if Graph.has_variant t Kinds.Gpu then Kinds.Gpu else Kinds.Cpu)
      ~mem:(fun _ -> Kinds.Zero_copy)
  in
  let p_zc = Automap_api.measure_mapping machine g all_zc in
  Printf.printf "all collections in Zero-Copy: %.1f ms/iter\n" (p_zc *. 1e3);

  (* 4. AutoMap searches for the best split. *)
  let r = Driver.run ~seed:0 (Driver.Ccd { rotations = 5 }) machine g in
  Printf.printf "AutoMap: %.1f ms/iter (%.1fx faster than all-ZC)\n" (r.Driver.perf *. 1e3)
    (p_zc /. r.Driver.perf);
  Printf.printf "  %s\n" (Report.placement_summary g r.Driver.best)
