(* Multi-fidelity ensemble co-scheduling (the §5.1 / Figure 7
   scenario).

     dune exec examples/maestro_ensemble.exe

   One high-fidelity CFD sample fills the GPUs' Frame-Buffers; 32
   low-fidelity samples must run somewhere without slowing it down.
   Neither standard strategy (all-LF on CPU+System, all-LF on
   GPU+Zero-Copy) is right for every configuration; AutoMap finds a
   placement at least as good as both. *)

let () =
  let machine = Presets.lassen ~nodes:1 in
  Format.printf "machine: %a@.@." Machine.pp machine;
  let degradation ~n_lf ~resolution =
    let hf_alone = Maestro.graph ~nodes:1 ~n_lf:0 ~resolution () in
    let base =
      Automap_api.measure_mapping machine hf_alone
        (Mapping.default_start hf_alone machine)
    in
    let g = Maestro.graph ~nodes:1 ~n_lf ~resolution () in
    let relative mapping = Automap_api.measure_mapping machine g mapping /. base in
    let cpu = relative (Maestro.lf_cpu_sys g machine) in
    let zc = relative (Maestro.lf_gpu_zc g machine) in
    let r =
      Driver.run ~seed:0 ~runs:3 ~final_runs:7
        ~start:(Maestro.lf_gpu_zc g machine)
        (Driver.Ccd { rotations = 5 })
        machine g
    in
    (cpu, zc, r.Driver.perf /. base, r.Driver.best, g)
  in
  List.iter
    (fun (n_lf, resolution) ->
      let cpu, zc, am, best, g = degradation ~n_lf ~resolution in
      Printf.printf "%2d LF samples @ %d^3:\n" n_lf resolution;
      Printf.printf "  LF on CPU+SYS : %.3fx of HF-alone\n" cpu;
      Printf.printf "  LF on GPU+ZC  : %.3fx\n" zc;
      Printf.printf "  AutoMap       : %.3fx  (%s)\n\n" am
        (Report.placement_summary g best))
    [ (8, 16); (32, 16); (64, 32) ]
