examples/quickstart.ml: App Automap_api Codec Driver Format Graph List Machine Mapping Presets Printf Report
