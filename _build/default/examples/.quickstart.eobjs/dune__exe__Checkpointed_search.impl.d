examples/checkpointed_search.ml: App Ccd Evaluator List Portfolio Presets Printf Profiles_db Report String
