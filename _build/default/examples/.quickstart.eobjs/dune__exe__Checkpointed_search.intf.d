examples/checkpointed_search.mli:
