examples/memory_constrained.mli:
