examples/maestro_ensemble.mli:
