examples/maestro_ensemble.ml: Automap_api Driver Format List Machine Maestro Mapping Presets Printf Report
