examples/memory_constrained.ml: Automap_api Driver Exec Graph Kinds Machine Mapping Pennant Placement Presets Printf Report
