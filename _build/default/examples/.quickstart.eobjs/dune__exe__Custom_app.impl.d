examples/custom_app.ml: Automap_api Codec Driver Format Graph Machine Mapping Printf Report Workload
