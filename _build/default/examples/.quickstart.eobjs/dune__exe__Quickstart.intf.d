examples/quickstart.mli:
