(* AutoMap command-line interface.

   Subcommands:
     apps                      -- list the bundled benchmark applications
     analyze                   -- static feasibility report (lint, domains, groups)
     tune                      -- search for a fast mapping and report it
     search                    -- resumable engine search with progress events
     compare                   -- measure default/custom/HEFT/a saved mapping
     simulate                  -- run one mapping and export its execution trace
     serve                     -- mapping-as-a-service daemon (JSON over a socket)
     request                   -- send one request to a running serve daemon

   The workload can be a bundled benchmark (-a/--app with -i/--input)
   or external description files (--graph FILE, and --machine FILE in
   place of the -c preset) as produced by Graph_codec / Machine_codec —
   the §3.3 "search space and machine model representation" input.

   Examples:
     automap_cli profile -a pennant -i 320x90 -o pennant      # emit .tg/.mach
     automap_cli tune -a pennant -i 320x90 -n 1
     automap_cli tune -a htr -i 8x8y9z --algo cd --runs 3 -o mapping.txt
     automap_cli tune --graph app.tg --machine cluster.mach --objective energy
     automap_cli compare -a pennant -i 320x90 -m mapping.txt
     automap_cli simulate -a circuit -i n100w400 --trace trace.json *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  contents

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let machine_preset ~cluster ~nodes =
  match Presets.of_spec cluster ~nodes with
  | Ok m -> m
  | Error e ->
      failwith
        (Printf.sprintf
           "%s (presets: shepard|lassen|testbed|cpu_only|headless, topologies: \
            grid:WxH, torus:WxH, fattree:LEVELS:ARITY, direct:N, each with an \
            optional :free suffix)"
           e)

let app_of name =
  match App.find name with
  | Some app -> app
  | None ->
      failwith
        (Printf.sprintf "unknown application %S (%s)" name
           (String.concat "|" (List.map (fun a -> a.App.app_name) App.all)))

(* Resolve the workload: either --graph/--machine files or a bundled
   app on a preset cluster.  Returns (machine, graph, custom mapping
   generator if any). *)
let resolve_workload ~app ~input ~nodes ~cluster ~graph_file ~machine_file =
  let machine =
    match machine_file with
    | Some f -> (
        match Machine_codec.of_string (read_file f) with
        | Ok m -> m
        | Error e -> failwith (Printf.sprintf "%s: %s" f e))
    | None -> machine_preset ~cluster ~nodes
  in
  match graph_file with
  | Some f -> (
      match Graph_codec.of_string (read_file f) with
      | Ok g -> (machine, g, None)
      | Error e -> failwith (Printf.sprintf "%s: %s" f e))
  | None -> (
      match (app, input) with
      | Some a, Some i ->
          let a = app_of a in
          (machine, a.App.graph ~nodes:machine.Machine.nodes ~input:i, Some a.App.custom)
      | _ -> failwith "either --graph FILE or both --app and --input are required")

let objective_of = function
  | "time" -> None
  | "energy" ->
      Some (fun machine r -> Energy.joules_per_iteration machine Energy.default_power r)
  | "edp" ->
      Some (fun machine r -> Energy.edp_per_iteration machine Energy.default_power r)
  | other -> failwith (Printf.sprintf "unknown objective %S (time|energy|edp)" other)

let algo_of = function
  | "ccd" -> Driver.Ccd { rotations = 5 }
  | "cd" -> Driver.Cd
  | "ensemble" | "opentuner" | "ot" -> Driver.Ensemble_tuner
  | "random" -> Driver.Random_walk { max_evals = 1000 }
  | "annealing" -> Driver.Annealing { max_evals = 2000 }
  | "portfolio" -> Driver.Portfolio
  | "heft" -> Driver.Heft
  | other -> failwith (Printf.sprintf "unknown algorithm %S" other)

(* common options *)
let app_arg =
  Arg.(value & opt (some string) None & info [ "a"; "app" ] ~docv:"APP" ~doc:"Bundled application name.")

let input_arg =
  Arg.(value & opt (some string) None & info [ "i"; "input" ] ~docv:"INPUT" ~doc:"Input name (application-specific syntax).")

let nodes_arg =
  Arg.(value & opt int 1 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Machine nodes (ignored with --machine).")

let cluster_arg =
  Arg.(value & opt string "shepard" & info [ "c"; "cluster" ] ~docv:"CLUSTER" ~doc:"Machine preset (shepard, lassen, testbed, cpu_only, headless) or a topology spec (grid:WxH, torus:WxH, fattree:LEVELS:ARITY, direct:N; append :free to disable link contention), e.g. grid:16x16. Topology specs fix the node count, so -n must be 1 (default) or match.")

let graph_file_arg =
  Arg.(value & opt (some string) None & info [ "graph" ] ~docv:"FILE" ~doc:"Task-graph description file (Graph_codec format).")

let machine_file_arg =
  Arg.(value & opt (some string) None & info [ "machine" ] ~docv:"FILE" ~doc:"Machine description file (Machine_codec format).")

let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Random seed.")

let no_symmetry_arg =
  Arg.(value & flag & info [ "no-symmetry" ] ~doc:"Disable symmetry reduction (on by default): orbit canonicalization of sampled mappings and the engine seen-set that rejects symmetric duplicates of already-evaluated candidates without re-simulating. The AUTOMAP_NO_SYMMETRY environment variable has the same effect. Symmetry changes the search trajectory, so checkpoints only resume under the flag they were written with.")

let no_dominance_arg =
  Arg.(value & flag & info [ "no-dominance" ] ~doc:"Disable dominance pruning (on by default): processor/memory-kind values the static analysis proves dominated — some surviving value is equal-or-better in every candidate — are dropped from the search domains. The AUTOMAP_NO_DOMINANCE environment variable has the same effect.")

let symmetry_enabled no_symmetry =
  (not no_symmetry) && Sys.getenv_opt "AUTOMAP_NO_SYMMETRY" = None

let dominance_enabled no_dominance =
  (not no_dominance) && Sys.getenv_opt "AUTOMAP_NO_DOMINANCE" = None

let apps_cmd =
  let doc = "List the bundled benchmark applications and their inputs." in
  let run () =
    List.iter
      (fun app ->
        Printf.printf "%-8s inputs (1 node): %s\n" app.App.app_name
          (String.concat " " (app.App.inputs ~nodes:1)))
      App.all
  in
  Cmd.v (Cmd.info "apps" ~doc) Term.(const run $ const ())

let tune_cmd =
  let doc = "Search for a fast mapping (offline autotuning, §3.3)." in
  let algo_arg =
    Arg.(value & opt string "ccd" & info [ "algo" ] ~docv:"ALGO" ~doc:"Search algorithm: ccd, cd, ensemble, random, annealing, portfolio, heft.")
  in
  let objective_arg =
    Arg.(value & opt string "time" & info [ "objective" ] ~docv:"OBJ" ~doc:"Metric to minimize: time, energy or edp.")
  in
  let runs_arg =
    Arg.(value & opt int 7 & info [ "runs" ] ~doc:"Executions per candidate mapping.")
  in
  let final_runs_arg =
    Arg.(value & opt int 30 & info [ "final-runs" ] ~doc:"Executions per top-5 mapping in the final re-evaluation.")
  in
  let budget_arg =
    Arg.(value & opt (some float) None & info [ "budget" ] ~docv:"SECONDS" ~doc:"Virtual search-time budget.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the best mapping to FILE.")
  in
  let extended_arg =
    Arg.(value & flag & info [ "extended" ] ~doc:"Also search the group-task distribution strategy (blocked vs cyclic across nodes).")
  in
  let db_arg =
    Arg.(value & opt (some string) None & info [ "db" ] ~docv:"FILE" ~doc:"Profiles-database checkpoint: reloaded before the search if it exists, rewritten afterwards (warm restart across sessions).")
  in
  let no_incremental_arg =
    Arg.(value & flag & info [ "no-incremental" ] ~doc:"Force full re-simulation of every candidate (disable timeline capture and dirty-cone replay). Results are bit-identical either way; this is a debugging/measurement switch. The AUTOMAP_NO_INCREMENTAL environment variable has the same effect.")
  in
  let run app input nodes cluster graph_file machine_file seed algo objective runs
      final_runs budget output extended db_file no_incremental no_symmetry
      no_dominance =
    let machine, g, custom =
      resolve_workload ~app ~input ~nodes ~cluster ~graph_file ~machine_file
    in
    let objective = objective_of objective in
    let db =
      match db_file with
      | Some f when Sys.file_exists f -> (
          match Profiles_db.load g (read_file f) with
          | Ok db ->
              Printf.printf "(warm start: %d mappings reloaded from %s)\n"
                (Profiles_db.size db) f;
              Some db
          | Error e -> failwith (Printf.sprintf "%s: %s" f e))
      | _ -> None
    in
    let incremental =
      (not no_incremental) && Sys.getenv_opt "AUTOMAP_NO_INCREMENTAL" = None
    in
    let r =
      Driver.run ~runs ~final_runs ~seed ?budget ?objective ~extended ~incremental
        ~symmetry:(symmetry_enabled no_symmetry)
        ~dominance:(dominance_enabled no_dominance) ?db (algo_of algo) machine g
    in
    Option.iter
      (fun f ->
        write_file f (Profiles_db.save r.Driver.db);
        Printf.printf "(profiles database saved to %s: %d mappings)\n" f
          (Profiles_db.size r.Driver.db))
      db_file;
    Format.printf "%a@.%a@.@." Machine.pp machine Graph.pp_summary g;
    let describe label mapping =
      match Exec.run ~noise_sigma:0.0 machine g mapping with
      | Ok res ->
          Printf.printf "%-8s %10.4f ms/iter  %8.4f J/iter\n" label
            (res.Exec.per_iteration *. 1e3)
            (Energy.joules_per_iteration machine Energy.default_power res)
      | Error e -> Printf.printf "%-8s %s\n" label (Placement.error_to_string e)
    in
    describe "default" (Mapping.default_start g machine);
    Option.iter (fun c -> describe "custom" (c g machine)) custom;
    describe "automap" r.Driver.best;
    Printf.printf "\nsearch: %d suggested, %d evaluated, %d cache hits, %d invalid, %d OOM\n"
      r.Driver.suggested r.Driver.evaluated r.Driver.cache_hits r.Driver.invalid
      r.Driver.oom;
    Printf.printf "best mapping: %s\n" (Report.placement_summary g r.Driver.best);
    match output with
    | None -> ()
    | Some file ->
        write_file file (Codec.to_string g r.Driver.best);
        Printf.printf "mapping written to %s\n" file
  in
  Cmd.v (Cmd.info "tune" ~doc)
    Term.(
      const run $ app_arg $ input_arg $ nodes_arg $ cluster_arg $ graph_file_arg
      $ machine_file_arg $ seed_arg $ algo_arg $ objective_arg $ runs_arg
      $ final_runs_arg $ budget_arg $ out_arg $ extended_arg $ db_arg
      $ no_incremental_arg $ no_symmetry_arg $ no_dominance_arg)

(* minimal JSON string escaping for the --events stream *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no literal for infinities (penalised/pruned proposals) *)
let json_float f = if Float.is_finite f then Printf.sprintf "%.17g" f else "null"

let search_cmd =
  let doc =
    "Resumable budget-aware search through the strategy engine: stream progress \
     events, checkpoint periodically, resume a killed run decision-identically."
  in
  let algo_arg =
    Arg.(value & opt string "ccd" & info [ "algo" ] ~docv:"ALGO" ~doc:"Search algorithm: ccd, cd, ensemble, random, annealing, portfolio, heft.")
  in
  let runs_arg =
    Arg.(value & opt int 7 & info [ "runs" ] ~doc:"Executions per candidate mapping.")
  in
  let budget_arg =
    Arg.(value & opt (some float) None & info [ "budget" ] ~docv:"SECONDS" ~doc:"Virtual search-time budget.")
  in
  let max_trials_arg =
    Arg.(value & opt (some int) None & info [ "max-trials" ] ~docv:"N" ~doc:"Stop after N evaluated proposals (including the start).")
  in
  let max_wall_arg =
    Arg.(value & opt (some float) None & info [ "max-wall" ] ~docv:"SECONDS" ~doc:"Stop after SECONDS of real elapsed time (resume-aware: carried across checkpoints).")
  in
  let progress_arg =
    Arg.(value & flag & info [ "progress" ] ~doc:"Print each improvement and phase change to stderr as it happens.")
  in
  let events_arg =
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc:"Append every engine event to FILE as JSON lines (eval, improve, phase, checkpoint).")
  in
  let checkpoint_arg =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc:"Write a resumable checkpoint to FILE (atomically) every --checkpoint-every trials.")
  in
  let checkpoint_every_arg =
    Arg.(value & opt int 25 & info [ "checkpoint-every" ] ~docv:"N" ~doc:"Checkpoint interval in evaluated trials.")
  in
  let resume_arg =
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc:"Resume from a checkpoint FILE written by the same workload and settings; the search continues decision-identically.")
  in
  let heft_seed_arg =
    Arg.(value & flag & info [ "heft-seed" ] ~doc:"Start the search from the HEFT list schedule instead of the runtime-default mapping.")
  in
  let batch_arg =
    Arg.(value & flag & info [ "batch" ] ~doc:"Evaluate each task's whole neighbour set as one batch (CD/CCD only): scratch setup and the incumbent rebind are amortized across the set and candidates past the first improvement are skipped. Decisions are bit-identical to the sequential search; this is purely a throughput switch.")
  in
  let batch_min_arg =
    Arg.(value & opt int Descent.default_min_batch & info [ "batch-min" ] ~docv:"N" ~doc:"Minimum candidate-set size for batched evaluation: smaller sets run through the sequential path, whose per-candidate overhead is lower than batch amortization can recover at that size (BENCH_searchrate.json). Decisions are identical either way; 1 always batches.")
  in
  let no_surrogate_arg =
    Arg.(value & flag & info [ "no-surrogate" ] ~doc:"Disable the online surrogate cost model (trained by default on every exact evaluation; with --batch it also reranks each candidate batch best-predicted-first). The AUTOMAP_NO_SURROGATE environment variable has the same effect.")
  in
  let surrogate_skim_arg =
    Arg.(value & opt (some int) None & info [ "surrogate-skim" ] ~docv:"K" ~doc:"Simulate only the surrogate's top-K predictions of each candidate batch (CD/CCD only; implies --batch). Unlike plain reranking this can change the search trajectory — the bench gate holds it never-worse at equal trial budgets.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the best mapping to FILE.")
  in
  let run app input nodes cluster graph_file machine_file seed algo runs budget
      max_trials max_wall progress events_file checkpoint checkpoint_every resume
      heft_seed batch batch_min no_surrogate surrogate_skim no_symmetry
      no_dominance output =
    let machine, g, _ =
      resolve_workload ~app ~input ~nodes ~cluster ~graph_file ~machine_file
    in
    let events_oc = Option.map open_out events_file in
    let emit line = Option.iter (fun oc -> output_string oc line; output_char oc '\n'; flush oc) events_oc in
    let on_event = function
      | Engine.Eval { trial; perf; vt; accepted; _ } ->
          emit
            (Printf.sprintf
               {|{"event":"eval","trial":%d,"perf":%s,"vt":%.17g,"accepted":%b}|}
               trial (json_float perf) vt accepted)
      | Engine.Improve { trial; mapping; perf; vt } ->
          emit
            (Printf.sprintf
               {|{"event":"improve","trial":%d,"perf":%s,"vt":%.17g,"mapping":"%s"}|}
               trial (json_float perf) vt
               (json_escape (Mapping.canonical_key mapping)));
          if progress then
            Printf.eprintf "[trial %6d, vt %8.2fs] best %.4f ms/iter\n%!" trial vt
              (perf *. 1e3)
      | Engine.Phase_change { name } ->
          emit (Printf.sprintf {|{"event":"phase","name":"%s"}|} (json_escape name));
          if progress then Printf.eprintf "[phase] %s\n%!" name
      | Engine.Checkpointed { trial; path } ->
          emit
            (Printf.sprintf {|{"event":"checkpoint","trial":%d,"path":"%s"}|} trial
               (json_escape path));
          if progress then Printf.eprintf "[checkpoint] trial %d -> %s\n%!" trial path
    in
    let surrogate =
      (not no_surrogate) && Sys.getenv_opt "AUTOMAP_NO_SURROGATE" = None
    in
    let symmetry = symmetry_enabled no_symmetry in
    let r =
      Driver.run ~runs ~seed ?budget ?max_trials ?max_wall ~heft_seed ~batch
        ~min_batch:batch_min ~surrogate ?surrogate_skim ~symmetry
        ~dominance:(dominance_enabled no_dominance) ~on_event ?checkpoint
        ~checkpoint_every ?resume_from:resume (algo_of algo) machine g
    in
    Option.iter close_out events_oc;
    Format.printf "%a@." Driver.pp_result r;
    Printf.printf "engine: %d steps, %d checkpoints written\n" r.Driver.engine_steps
      r.Driver.checkpoints_written;
    if batch then
      Printf.printf "batches: %d evaluated, %d short-circuited past an improvement\n"
        r.Driver.batch_calls r.Driver.batch_short_circuits;
    if symmetry then
      Printf.printf "symmetry: %d symmetric duplicates skipped without re-simulation\n"
        r.Driver.symmetry_skips;
    if progress && batch then
      Printf.eprintf "[batch] %d batches, %d short-circuits\n%!" r.Driver.batch_calls
        r.Driver.batch_short_circuits;
    if surrogate then begin
      Printf.printf
        "surrogate: %d observations, %d batches reranked, %d candidates skimmed%s\n"
        r.Driver.surrogate_trained r.Driver.surrogate_reranks
        r.Driver.surrogate_skips
        (if Float.is_finite r.Driver.spearman then
           Printf.sprintf ", spearman %.3f" r.Driver.spearman
         else "");
      if progress then
        Printf.eprintf "[surrogate] %d trained, %d reranks, %d skips\n%!"
          r.Driver.surrogate_trained r.Driver.surrogate_reranks
          r.Driver.surrogate_skips
    end;
    Printf.printf "best mapping: %s\n" (Report.placement_summary g r.Driver.best);
    match output with
    | None -> ()
    | Some file ->
        write_file file (Codec.to_string g r.Driver.best);
        Printf.printf "mapping written to %s\n" file
  in
  Cmd.v (Cmd.info "search" ~doc)
    Term.(
      const run $ app_arg $ input_arg $ nodes_arg $ cluster_arg $ graph_file_arg
      $ machine_file_arg $ seed_arg $ algo_arg $ runs_arg $ budget_arg
      $ max_trials_arg $ max_wall_arg $ progress_arg $ events_arg $ checkpoint_arg
      $ checkpoint_every_arg $ resume_arg $ heft_seed_arg $ batch_arg
      $ batch_min_arg $ no_surrogate_arg $ surrogate_skim_arg $ no_symmetry_arg
      $ no_dominance_arg $ out_arg)

let analyze_cmd =
  let doc =
    "Statically analyze a (machine, graph) pair before searching: machine lint, \
     per-coordinate feasible domains, co-location constraint groups and \
     mapping-independent lower-bound floors (§4.2).  Exits non-zero when the \
     input is certifiably infeasible (error-level diagnostics), or — with \
     --strict — when any warning is present."
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as a JSON object instead of text.")
  in
  let strict_arg =
    Arg.(value & flag & info [ "strict" ] ~doc:"Treat warnings as errors: exit non-zero if any warning-level diagnostic is present.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the report to FILE instead of stdout.")
  in
  let rotations_arg =
    Arg.(value & opt int 5 & info [ "rotations" ] ~docv:"N" ~doc:"CCD rotation count for the co-location group schedule.")
  in
  let run app input nodes cluster graph_file machine_file json strict output rotations =
    let machine, g, _ =
      resolve_workload ~app ~input ~nodes ~cluster ~graph_file ~machine_file
    in
    let a = Analysis.analyze ~rotations machine g in
    let text =
      if json then Analysis.to_json a else Format.asprintf "%a" Analysis.report a
    in
    (match output with
    | None -> print_string text
    | Some f ->
        write_file f text;
        Printf.printf "report written to %s\n" f);
    let n_errors = List.length (Analysis.errors a) in
    let n_warnings = List.length (Analysis.warnings a) in
    if n_errors > 0 then exit 1;
    if strict && n_warnings > 0 then begin
      Printf.eprintf "analyze: --strict and %d warning(s) present\n" n_warnings;
      exit 1
    end
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(
      const run $ app_arg $ input_arg $ nodes_arg $ cluster_arg $ graph_file_arg
      $ machine_file_arg $ json_arg $ strict_arg $ out_arg $ rotations_arg)

let compare_cmd =
  let doc = "Measure the default, custom, HEFT and (optionally) a saved mapping." in
  let mapping_arg =
    Arg.(value & opt (some string) None & info [ "m"; "mapping" ] ~docv:"FILE" ~doc:"Mapping file produced by tune -o.")
  in
  let run app input nodes cluster graph_file machine_file seed mapping_file =
    let machine, g, custom =
      resolve_workload ~app ~input ~nodes ~cluster ~graph_file ~machine_file
    in
    let measure label mapping =
      match Automap_api.measure_mapping ~seed machine g mapping with
      | v -> Printf.printf "%-8s %10.4f ms/iter\n" label (v *. 1e3)
      | exception Failure e -> Printf.printf "%-8s failed: %s\n" label e
    in
    measure "default" (Mapping.default_start g machine);
    Option.iter (fun c -> measure "custom" (c g machine)) custom;
    measure "heft" (Heft.mapping machine g);
    match mapping_file with
    | None -> ()
    | Some file -> (
        match Codec.of_string g (read_file file) with
        | Ok m -> measure "file" m
        | Error e -> Printf.printf "file     unparsable: %s\n" e)
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(
      const run $ app_arg $ input_arg $ nodes_arg $ cluster_arg $ graph_file_arg
      $ machine_file_arg $ seed_arg $ mapping_arg)

let simulate_cmd =
  let doc = "Execute one mapping in the simulator; optionally export its trace." in
  let mapping_arg =
    Arg.(value & opt (some string) None & info [ "m"; "mapping" ] ~docv:"FILE" ~doc:"Mapping file (default: the runtime default mapping).")
  in
  let trace_arg =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Write a Chrome trace-event JSON of the run.")
  in
  let gantt_arg =
    Arg.(value & flag & info [ "gantt" ] ~doc:"Print an ASCII Gantt chart of the run.")
  in
  let run app input nodes cluster graph_file machine_file seed mapping_file trace_file
      gantt =
    let machine, g, _ =
      resolve_workload ~app ~input ~nodes ~cluster ~graph_file ~machine_file
    in
    let mapping =
      match mapping_file with
      | None -> Mapping.default_start g machine
      | Some file -> (
          match Codec.of_string g (read_file file) with
          | Ok m -> m
          | Error e -> failwith e)
    in
    let collector = Trace.create () in
    match Exec.run ~noise_sigma:0.0 ~seed ~trace:collector machine g mapping with
    | Error e -> failwith (Placement.error_to_string e)
    | Ok r ->
        Printf.printf "makespan %.4f ms (%.4f ms/iter), %d copies, %.3f MB moved\n"
          (r.Exec.makespan *. 1e3)
          (r.Exec.per_iteration *. 1e3)
          r.Exec.n_copies (r.Exec.bytes_moved /. 1e6);
        Printf.printf "energy %.4f J/iter\n"
          (Energy.joules_per_iteration machine Energy.default_power r);
        if gantt then print_string (Trace.gantt collector);
        Option.iter
          (fun f ->
            write_file f (Trace.to_chrome_json collector);
            Printf.printf "trace written to %s (load in chrome://tracing)\n" f)
          trace_file
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ app_arg $ input_arg $ nodes_arg $ cluster_arg $ graph_file_arg
      $ machine_file_arg $ seed_arg $ mapping_arg $ trace_arg $ gantt_arg)

let profile_cmd =
  let doc =
    "Run the application once and emit the search-space input files (§3.3): the \
     task-graph and machine descriptions plus the measured per-task profile."
  in
  let out_arg =
    Arg.(value & opt string "profile_out" & info [ "o"; "output" ] ~docv:"PREFIX" ~doc:"Output prefix: writes PREFIX.tg, PREFIX.mach and PREFIX.profile.")
  in
  let run app input nodes cluster graph_file machine_file seed prefix =
    ignore seed;
    let machine, g, _ =
      resolve_workload ~app ~input ~nodes ~cluster ~graph_file ~machine_file
    in
    (* one profiling run under the runtime-default strategy *)
    let default = Mapping.default_start g machine in
    let profile = Exec.profile machine g default in
    write_file (prefix ^ ".tg") (Graph_codec.to_string g);
    write_file (prefix ^ ".mach") (Machine_codec.to_string machine);
    let buf = Buffer.create 256 in
    Buffer.add_string buf "# per-task seconds under the default mapping\n";
    List.iter
      (fun (tid, s) ->
        Buffer.add_string buf
          (Printf.sprintf "%s %.17g\n" (Graph.task g tid).Graph.tname s))
      profile;
    write_file (prefix ^ ".profile") (Buffer.contents buf);
    Printf.printf "wrote %s.tg, %s.mach, %s.profile\n" prefix prefix prefix;
    Printf.printf "tune it with: automap_cli tune --graph %s.tg --machine %s.mach\n"
      prefix prefix
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ app_arg $ input_arg $ nodes_arg $ cluster_arg $ graph_file_arg
      $ machine_file_arg $ seed_arg $ out_arg)

(* common endpoint options for serve / request *)
let socket_arg =
  Arg.(value & opt string "automap.sock" & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path (ignored with --port).")

let port_arg =
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc:"Listen/connect on loopback TCP PORT instead of a Unix socket.")

let endpoint_of ~socket ~port =
  match port with Some p -> Server.Tcp p | None -> Server.Unix_path socket

let serve_cmd =
  let doc =
    "Run the mapping service: a daemon answering concurrent map/analyze requests \
     as JSON lines over a socket.  Searches are time-sliced across a worker pool \
     (fair scheduling — a long search never starves a short request) and memoized \
     across requests: compiled simulations, finished results and measured \
     profiles are all shared.  With --state-dir, SIGTERM checkpoints every \
     in-flight search and a restarted daemon resumes them decision-identically."
  in
  let workers_arg =
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N" ~doc:"Worker domains running search slices.")
  in
  let slice_arg =
    Arg.(value & opt int 40 & info [ "slice-trials" ] ~docv:"N" ~doc:"Scheduling quantum: evaluated trials per slice before a search re-queues.")
  in
  let state_dir_arg =
    Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc:"Persist job metadata and per-slice checkpoints under DIR; on startup, orphaned jobs found there are resumed.")
  in
  let run socket port workers slice_trials state_dir =
    let srv = Server.create ~slice_trials ?state_dir () in
    let recovered = Server.recover srv in
    if recovered > 0 then Printf.printf "recovered %d in-flight job(s)\n" recovered;
    (match port with
    | Some p -> Printf.printf "listening on tcp 127.0.0.1:%d\n%!" p
    | None -> Printf.printf "listening on %s\n%!" socket);
    Server.serve ~workers srv (endpoint_of ~socket ~port);
    Printf.printf "daemon stopped\n"
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ socket_arg $ port_arg $ workers_arg $ slice_arg $ state_dir_arg)

let request_cmd =
  let doc =
    "Send one JSON request line to a running serve daemon and print the JSON \
     response.  The request is validated locally before sending.  Examples: \
     '{\"type\":\"ping\"}', '{\"type\":\"map\",\"id\":\"j1\",\"app\":\"stencil\",\
     \"nodes\":2,\"max_trials\":200,\"wait\":true}', \
     '{\"type\":\"result\",\"id\":\"j1\"}', '{\"type\":\"status\"}'."
  in
  let request_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"JSON" ~doc:"The request object, as one line of JSON.")
  in
  let die fmt = Printf.ksprintf (fun m -> prerr_endline ("request: " ^ m); exit 1) fmt in
  let run socket port request =
    (match Wire.request_of_string request with
    | Ok _ -> ()
    | Error e -> die "bad request: %s" e);
    let fd =
      try
        match port with
        | Some p ->
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, p));
            fd
        | None ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX socket);
            fd
      with Unix.Unix_error (e, _, _) ->
        die "cannot connect to the daemon: %s" (Unix.error_message e)
    in
    let oc = Unix.out_channel_of_descr fd in
    let ic = Unix.in_channel_of_descr fd in
    output_string oc request;
    output_char oc '\n';
    flush oc;
    (match input_line ic with
    | line -> print_endline line
    | exception End_of_file -> die "connection closed without a response");
    Unix.close fd
  in
  Cmd.v (Cmd.info "request" ~doc) Term.(const run $ socket_arg $ port_arg $ request_arg)

let () =
  let doc = "AutoMap: automated mapping of task-based programs" in
  let info = Cmd.info "automap_cli" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            apps_cmd;
            analyze_cmd;
            tune_cmd;
            search_cmd;
            compare_cmd;
            simulate_cmd;
            profile_cmd;
            serve_cmd;
            request_cmd;
          ]))
